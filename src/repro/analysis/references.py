"""Memory references: the unit the cache analysis classifies.

Every instruction fetch is a reference to the memory block containing
the instruction.  A reference is identified by its position in the
CFG — (block id, index within block) — because virtual inlining means
the same address can appear in several contexts with different
classifications.

The (address → memory block) walk depends on the geometry only through
the line size (``block_of`` shifts by the block offset bits), while
the set mapping depends on the set count too.  The walk is therefore
memoised per (CFG, line size): a geometry sweep extracting references
for many geometries of one line-size group pays for the block stream
once and recomputes only the per-geometry set mapping.  The built
:func:`all_references` maps are memoised one level up, per (CFG, line
size, set count) — a geometry sweep asks for the same reference map
from several places (the classification engine, the persistence
analysis, the SRB pre-analysis) and for several geometries that share
a set mapping, and :class:`Reference` is frozen, so one shared map
serves them all.  Callers must treat the returned dict as immutable.
Both memos are keyed by CFG *identity* (a ``WeakKeyDictionary`` —
entries die with their CFG), matching the analyses' contract that a
CFG is frozen once analysis starts.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.cache import CacheGeometry
from repro.cfg import CFG


@dataclass(frozen=True)
class Reference:
    """One instruction fetch at a specific CFG position."""

    block_id: int
    index: int
    address: int
    memory_block: int
    set_index: int

    @property
    def key(self) -> tuple[int, int]:
        """CFG position: (block id, instruction index)."""
        return (self.block_id, self.index)


#: CFG → line size → block id → ((address, memory block), ...).
_STREAMS: "weakref.WeakKeyDictionary[CFG, dict]" = \
    weakref.WeakKeyDictionary()


def _block_streams(cfg: CFG, geometry: CacheGeometry
                   ) -> dict[int, tuple[tuple[int, int], ...]]:
    """The memoised (address, memory block) stream of every block."""
    per_cfg = _STREAMS.get(cfg)
    if per_cfg is None:
        per_cfg = _STREAMS[cfg] = {}
    streams = per_cfg.get(geometry.block_bytes)
    if streams is None:
        offset_bits = geometry.offset_bits
        streams = {
            block_id: tuple(
                (instruction.address, instruction.address >> offset_bits)
                for instruction in cfg.block(block_id).instructions)
            for block_id in cfg.block_ids()}
        per_cfg[geometry.block_bytes] = streams
    return streams


def block_references(cfg: CFG, geometry: CacheGeometry,
                     block_id: int) -> tuple[Reference, ...]:
    """The references issued by one basic block, in fetch order."""
    set_mask = geometry.sets - 1
    return tuple(
        Reference(block_id=block_id, index=index, address=address,
                  memory_block=memory_block,
                  set_index=memory_block & set_mask)
        for index, (address, memory_block)
        in enumerate(_block_streams(cfg, geometry)[block_id]))


#: CFG → (line size, set count) → the built ``all_references`` map.
_REFERENCES: "weakref.WeakKeyDictionary[CFG, dict]" = \
    weakref.WeakKeyDictionary()


def all_references(cfg: CFG,
                   geometry: CacheGeometry) -> dict[int, tuple[Reference, ...]]:
    """References of every block, keyed by block id.

    The returned map is shared between callers (memoised per
    (CFG, line size, set count)) and must not be mutated.
    """
    per_cfg = _REFERENCES.get(cfg)
    if per_cfg is None:
        per_cfg = _REFERENCES[cfg] = {}
    key = (geometry.block_bytes, geometry.sets)
    references = per_cfg.get(key)
    if references is None:
        streams = _block_streams(cfg, geometry)
        set_mask = geometry.sets - 1
        references = per_cfg[key] = {
            block_id: tuple(
                Reference(block_id=block_id, index=index, address=address,
                          memory_block=memory_block,
                          set_index=memory_block & set_mask)
                for index, (address, memory_block) in enumerate(stream))
            for block_id, stream in streams.items()}
    return references
