"""CHMC classification: the facade combining Must, May and Persistence.

:class:`CacheAnalysis` produces a :class:`ClassificationTable` at any
requested associativity (the fault-aware pipeline needs every value
from ``W`` down to ``0``), with the priority of the paper: always-hit
beats first-miss beats always-miss beats not-classified.

Three engines compute the underlying Must/May verdicts:

* ``"batch"`` (default) — the geometry-batched kernel of
  :mod:`repro.analysis.geometry_batch`: for a single geometry it
  behaves exactly like ``vector``; when the sweep hands a classify
  stage a whole line-size group, ONE stacked Must/May fixpoint pair
  (plus one shared SRB fixpoint) serves every geometry of the group;
* ``"vector"`` — the numpy age-vector engine of
  :mod:`repro.analysis.vectorized`: one Must and one May fixpoint at
  the nominal associativity answer *every* degraded associativity by
  age thresholding; kept as the per-geometry oracle for the stacked
  kernel;
* ``"dict"`` — the classic per-set dict implementation
  (:class:`~repro.analysis.must.MustAnalysis` /
  :class:`~repro.analysis.may.MayAnalysis`), kept as the reference
  oracle beneath both; it re-runs both fixpoints per associativity.

Select with the ``engine`` argument or ``REPRO_ANALYSIS_ENGINE``.
Results are identical by construction (property-tested in
``tests/test_analysis_vectorized.py``).

Classification tables also persist across runs through the
content-addressed :class:`~repro.analysis.store.ClassificationStore`
(``REPRO_CACHE`` / ``cache=...``): a warm run performs **zero**
fixpoints, mirroring the solve store's zero-backend-ILP property.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.chmc import (ALWAYS_HIT, ALWAYS_MISS, NOT_CLASSIFIED,
                                 Chmc, Classification)
from repro.analysis.may import MayAnalysis
from repro.analysis.must import MustAnalysis
from repro.analysis.persistence import PersistenceAnalysis
from repro.analysis.references import Reference, all_references
from repro.analysis.store import (ClassificationStore, classification_key,
                                  decode_table, encode_table)
from repro.analysis.vectorized import AgeVectorEngine
from repro.cache import CacheGeometry
from repro.cfg import CFG, LoopForest, find_loops
from repro.errors import AnalysisError

#: Environment variable selecting the analysis engine.
ENGINE_ENV = "REPRO_ANALYSIS_ENGINE"
_ENGINES = ("batch", "vector", "dict")


@dataclass
class AnalysisStats:
    """Work counters of one :class:`CacheAnalysis` instance.

    Flow into :class:`~repro.experiments.runner.BenchmarkResult`
    alongside the solver counters, so suite/sweep drivers can prove
    properties like "the warm rerun ran zero fixpoints".
    """

    #: Abstract-interpretation fixpoints actually run (Must and May
    #: count separately; the SRB pre-analysis counts one).
    fixpoints_run: int = 0
    #: Tables computed by an engine (cold work).
    tables_built: int = 0
    #: Tables decoded from the persistent classification store.
    classify_store_hits: int = 0
    #: Store lookups that missed (followed by a cold computation).
    classify_store_misses: int = 0
    #: Tables appended to the store after a cold computation.
    classify_store_writes: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "fixpoints_run": self.fixpoints_run,
            "tables_built": self.tables_built,
            "classify_store_hits": self.classify_store_hits,
            "classify_store_misses": self.classify_store_misses,
            "classify_store_writes": self.classify_store_writes,
        }


class ClassificationTable:
    """Per-reference classifications at one associativity."""

    def __init__(self, assoc: int,
                 table: dict[int, tuple[Classification, ...]],
                 references: dict[int, tuple[Reference, ...]]) -> None:
        self.assoc = assoc
        self._table = table
        self._references = references

    def of_block(self, block_id: int) -> tuple[Classification, ...]:
        return self._table[block_id]

    def of(self, block_id: int, index: int) -> Classification:
        return self._table[block_id][index]

    def references(self, block_id: int) -> tuple[Reference, ...]:
        return self._references[block_id]

    def items(self):
        """Yield (reference, classification) over the whole program."""
        for block_id, classifications in self._table.items():
            for reference, classification in zip(
                    self._references[block_id], classifications):
                yield reference, classification

    def count_by_chmc(self) -> dict[str, int]:
        """Histogram of classifications (for reports and tests)."""
        histogram: dict[str, int] = {}
        for _reference, classification in self.items():
            key = classification.chmc.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def encoded(self) -> dict:
        """The table in the classification store's canonical encoding.

        This is the transport format of the pipeline's
        :class:`~repro.pipeline.artifacts.ClassificationArtifact`: the
        exact JSON document the persistent store would hold, so an
        artifact crossing a process boundary round-trips through the
        same (property-tested) codec as a warm store read.
        """
        return encode_table(self._table)


class CacheAnalysis:
    """Runs and memoises the cache analyses of one (CFG, geometry) pair.

    ``cache`` selects the persistent classification store (same
    convention as the solve cache: ``None`` defers to
    ``REPRO_CACHE``, ``"off"`` disables, anything else is a
    directory).  ``engine`` picks the Must/May implementation
    (``"batch"``/``"vector"``/``"dict"``; default:
    ``REPRO_ANALYSIS_ENGINE``, else ``"batch"``).

    :func:`~repro.analysis.geometry_batch.grouped_analysis` injects
    the sharing plumbing of a line-size group through the keyword-only
    hooks: precomputed ``references``, a shared ``stats`` sink, a
    ``vector_engine`` facade (one geometry's slice of the stacked
    engine) and an ``srb_supplier`` computing the group's single SRB
    hit set.  Left at ``None``, every hook falls back to the
    self-contained per-geometry behaviour.
    """

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 forest: LoopForest | None = None, *,
                 cache: str | None = None,
                 engine: str | None = None,
                 references: dict[int, tuple[Reference, ...]] | None = None,
                 stats: AnalysisStats | None = None,
                 vector_engine=None,
                 srb_supplier=None) -> None:
        cfg.validate()
        self._cfg = cfg
        self._geometry = geometry
        self._forest = forest if forest is not None else find_loops(cfg)
        self._references = references if references is not None \
            else all_references(cfg, geometry)
        #: Built lazily: a warm run decodes every table from the store
        #: and never needs the conflict-counting precomputation.
        self._persistence: PersistenceAnalysis | None = None
        self._tables: dict[int, ClassificationTable] = {}
        if engine is None:
            engine = self.selected_engine()
        if engine not in _ENGINES:
            raise AnalysisError(
                f"unknown analysis engine {engine!r}; expected one of "
                f"{_ENGINES}")
        self._engine_name = engine
        self._vector = vector_engine
        self._srb_supplier = srb_supplier
        self._store = ClassificationStore.resolve(cache)
        self._digest: str | None = None
        self._srb_hits: frozenset[tuple[int, int]] | None = None
        self.stats = stats if stats is not None else AnalysisStats()

    @staticmethod
    def selected_engine() -> str:
        """The engine the environment selects (unset → ``"batch"``).

        An empty/whitespace variable means unset, matching the
        ``REPRO_CACHE`` convention.
        """
        return (os.environ.get(ENGINE_ENV) or "").strip().lower() or "batch"

    @property
    def cfg(self) -> CFG:
        return self._cfg

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    @property
    def forest(self) -> LoopForest:
        return self._forest

    @property
    def persistence(self) -> PersistenceAnalysis:
        if self._persistence is None:
            self._persistence = PersistenceAnalysis(
                self._cfg, self._geometry, self._forest)
        return self._persistence

    @property
    def engine_name(self) -> str:
        return self._engine_name

    @property
    def store(self) -> ClassificationStore | None:
        """The persistent classification store (``None`` if disabled)."""
        return self._store

    def classification(self, assoc: int | None = None) -> ClassificationTable:
        """Classification table at ``assoc`` working ways per set.

        ``assoc=None`` means the nominal (fault-free) associativity.
        By LRU set independence, the entry of a reference to set ``s``
        in the table for ``assoc = W - f`` is its classification when
        set ``s`` has ``f`` faulty ways — regardless of other sets.
        """
        if assoc is None:
            assoc = self._geometry.ways
        if assoc < 0 or assoc > self._geometry.ways:
            raise AnalysisError(
                f"associativity {assoc} out of range "
                f"[0, {self._geometry.ways}]")
        if assoc not in self._tables:
            table = self._from_store(assoc)
            if table is None:
                table = self._classify(assoc)
                self._to_store(assoc, table)
            self._tables[assoc] = table
        return self._tables[assoc]

    def srb_always_hits(self) -> frozenset[tuple[int, int]]:
        """Reference keys guaranteed to hit the Shared Reliable Buffer.

        The SRB behaves as a 1-set/1-way cache observing the whole
        stream (paper §III-B2); its Must analysis rides the same
        engine selection and persistent store as the main tables, so
        warm SRB estimations also run zero fixpoints.
        """
        if self._srb_hits is not None:
            return self._srb_hits
        srb_geometry = CacheGeometry(
            sets=1, ways=1, block_bytes=self._geometry.block_bytes)
        key = None
        if self._store is not None:
            # Keyed by the *full* L1 geometry even though the hit set
            # only depends on the line size: every geometry then does
            # the same store traffic whether grid cells run in one
            # process or fan out per geometry, keeping parallel sweep
            # reports byte-identical to sequential ones (at the cost
            # of storing one duplicate hit set per geometry).
            key = classification_key(self._cfg_digest(), self._geometry, 1,
                                     kind="srb")
            value = self._store.get(key)
            hits = _decode_srb(value)
            if hits is not None:
                self.stats.classify_store_hits += 1
                self._srb_hits = hits
                return hits
            self.stats.classify_store_misses += 1
        if self._srb_supplier is not None:
            # Group-shared SRB: the supplier runs (and accounts) its
            # single fixpoint on first demand; this geometry still did
            # its own store probe above and writes through below, so
            # store traffic matches the per-geometry path exactly.
            hit_keys = list(self._srb_supplier())
        elif self._engine_name != "dict":
            references = all_references(self._cfg, srb_geometry)
            engine = AgeVectorEngine(self._cfg, srb_geometry, references)
            hit_keys = [
                reference.key
                for block_id, refs in references.items()
                for reference, hit in zip(
                    refs, engine.guaranteed_hits(block_id, 1))
                if hit]
            self.stats.fixpoints_run += engine.fixpoints_run
        else:
            from repro.reliability.srb_analysis import \
                srb_always_hit_references
            hit_keys = list(srb_always_hit_references(self._cfg,
                                                      self._geometry))
            self.stats.fixpoints_run += 1
        self._srb_hits = frozenset(hit_keys)
        if self._store is not None:
            self._store.put(key, {"hits": sorted(self._srb_hits)})
            self.stats.classify_store_writes += 1
        return self._srb_hits

    def preload(self, tables: dict[int, object] | None,
                srb_hits=None) -> None:
        """Seed the memo from a pipeline artifact (no store traffic).

        ``tables`` maps associativity to store-encoded tables
        (:meth:`ClassificationTable.encoded`); ``srb_hits`` is an
        iterable of reference keys.  Entries that fail to decode or
        mismatch this analysis' reference map are skipped — they
        degrade to recomputation exactly like a corrupt store shard —
        and already-memoised associativities are never overwritten.
        Preloaded tables touch neither the stats counters nor the
        persistent store: the producing stage already accounted and
        persisted them.
        """
        for assoc, encoded in (tables or {}).items():
            assoc = int(assoc)
            if assoc in self._tables:
                continue
            table = decode_table(encoded)
            if table is None or set(table) != set(self._references) \
                    or any(len(table[block_id]) != len(refs)
                           for block_id, refs in self._references.items()):
                continue
            self._tables[assoc] = ClassificationTable(assoc, table,
                                                      self._references)
        if srb_hits is not None and self._srb_hits is None:
            self._srb_hits = frozenset(
                (int(block_id), int(index))
                for block_id, index in srb_hits)

    # -- persistence ---------------------------------------------------
    def _cfg_digest(self) -> str:
        if self._digest is None:
            self._digest = self._cfg.digest()
        return self._digest

    def _from_store(self, assoc: int) -> ClassificationTable | None:
        if self._store is None:
            return None
        key = classification_key(self._cfg_digest(), self._geometry, assoc)
        value = self._store.get(key)
        if value is not None:
            table = decode_table(value)
            # Malformed or mismatched entries degrade to recomputation.
            if table is not None and set(table) == set(self._references) \
                    and all(len(table[block_id]) == len(refs)
                            for block_id, refs in self._references.items()):
                self.stats.classify_store_hits += 1
                return ClassificationTable(assoc, table, self._references)
        self.stats.classify_store_misses += 1
        return None

    def _to_store(self, assoc: int, table: ClassificationTable) -> None:
        if self._store is None:
            return
        key = classification_key(self._cfg_digest(), self._geometry, assoc)
        self._store.put(key, encode_table(table._table))
        self.stats.classify_store_writes += 1

    # -- cold computation ----------------------------------------------
    def _classify(self, assoc: int) -> ClassificationTable:
        self.stats.tables_built += 1
        if assoc == 0:
            table = {
                block_id: tuple(ALWAYS_MISS for _ in references)
                for block_id, references in self._references.items()
            }
            return ClassificationTable(assoc, table, self._references)
        if self._engine_name != "dict":
            verdicts = self._vector_verdicts(assoc)
        else:
            verdicts = self._dict_verdicts(assoc)
        table: dict[int, tuple[Classification, ...]] = {}
        persistence = self.persistence
        #: scope -> the (immutable) first-miss classification carrying
        #: it — one object per scope instead of one per reference.
        first_miss: dict[int, Classification] = {}
        for block_id, references in self._references.items():
            hits, cached = verdicts(block_id)
            if not isinstance(hits, (tuple, list)):
                # numpy verdict vectors: iterate plain Python bools.
                hits, cached = hits.tolist(), cached.tolist()
            classifications = []
            #: set index -> persistence scope.  Within one CFG block
            #: the scope depends on the reference only through its set
            #: (same loop chain), and consecutive fetches share lines
            #: — so this collapses most scope queries.
            scopes: dict[int, int | None] = {}
            for reference, hit, may_hit in zip(references, hits, cached):
                if hit:
                    classifications.append(ALWAYS_HIT)
                    continue
                set_index = reference.set_index
                if set_index in scopes:
                    scope = scopes[set_index]
                else:
                    scope = scopes[set_index] = persistence.scope_of(
                        reference, assoc)
                if scope is not None:
                    classification = first_miss.get(scope)
                    if classification is None:
                        classification = first_miss[scope] = Classification(
                            chmc=Chmc.FIRST_MISS, scope=scope)
                    classifications.append(classification)
                elif not may_hit:
                    classifications.append(ALWAYS_MISS)
                else:
                    classifications.append(NOT_CLASSIFIED)
            table[block_id] = tuple(classifications)
        return ClassificationTable(assoc, table, self._references)

    def _vector_verdicts(self, assoc: int):
        """Always-hit / may-hit vectors from the shared age engine.

        The engine runs its two fixpoints on first use only; every
        associativity after that is pure array thresholding.
        """
        if self._vector is None:
            self._vector = AgeVectorEngine(self._cfg, self._geometry,
                                           self._references)
        engine = self._vector
        before = engine.fixpoints_run

        def verdicts(block_id: int):
            return (engine.guaranteed_hits(block_id, assoc),
                    engine.possibly_cached(block_id, assoc))

        # Force both fixpoints now so the counter reflects this table.
        engine.must_ages()
        engine.may_ages()
        self.stats.fixpoints_run += engine.fixpoints_run - before
        return verdicts

    def _dict_verdicts(self, assoc: int):
        """Reference oracle: fresh Must/May fixpoints per associativity."""
        must = MustAnalysis(self._cfg, self._geometry, assoc)
        may = MayAnalysis(self._cfg, self._geometry, assoc)
        self.stats.fixpoints_run += 2  # assoc 0 never reaches an engine

        def verdicts(block_id: int):
            return must.guaranteed_hits(block_id), may.possibly_cached(block_id)

        return verdicts


def _decode_srb(value: object) -> frozenset[tuple[int, int]] | None:
    if value is None:
        return None
    try:
        return frozenset((int(block_id), int(index))
                         for block_id, index in value["hits"])
    except (TypeError, ValueError, KeyError):
        return None
