"""CHMC classification: the facade combining Must, May and Persistence.

:class:`CacheAnalysis` runs the three analyses at any requested
associativity (memoised — the fault-aware pipeline needs every value
from ``W`` down to ``0``) and produces a :class:`ClassificationTable`
mapping every reference to its CHMC, with the priority of the paper:
always-hit beats first-miss beats always-miss beats not-classified.
"""

from __future__ import annotations

from repro.analysis.chmc import (ALWAYS_HIT, ALWAYS_MISS, NOT_CLASSIFIED,
                                 Chmc, Classification)
from repro.analysis.may import MayAnalysis
from repro.analysis.must import MustAnalysis
from repro.analysis.persistence import PersistenceAnalysis
from repro.analysis.references import Reference, all_references
from repro.cache import CacheGeometry
from repro.cfg import CFG, LoopForest, find_loops
from repro.errors import AnalysisError


class ClassificationTable:
    """Per-reference classifications at one associativity."""

    def __init__(self, assoc: int,
                 table: dict[int, tuple[Classification, ...]],
                 references: dict[int, tuple[Reference, ...]]) -> None:
        self.assoc = assoc
        self._table = table
        self._references = references

    def of_block(self, block_id: int) -> tuple[Classification, ...]:
        return self._table[block_id]

    def of(self, block_id: int, index: int) -> Classification:
        return self._table[block_id][index]

    def references(self, block_id: int) -> tuple[Reference, ...]:
        return self._references[block_id]

    def items(self):
        """Yield (reference, classification) over the whole program."""
        for block_id, classifications in self._table.items():
            for reference, classification in zip(
                    self._references[block_id], classifications):
                yield reference, classification

    def count_by_chmc(self) -> dict[str, int]:
        """Histogram of classifications (for reports and tests)."""
        histogram: dict[str, int] = {}
        for _reference, classification in self.items():
            key = classification.chmc.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


class CacheAnalysis:
    """Runs and memoises the cache analyses of one (CFG, geometry) pair."""

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 forest: LoopForest | None = None) -> None:
        cfg.validate()
        self._cfg = cfg
        self._geometry = geometry
        self._forest = forest if forest is not None else find_loops(cfg)
        self._references = all_references(cfg, geometry)
        self._persistence = PersistenceAnalysis(cfg, geometry, self._forest)
        self._tables: dict[int, ClassificationTable] = {}

    @property
    def cfg(self) -> CFG:
        return self._cfg

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    @property
    def forest(self) -> LoopForest:
        return self._forest

    @property
    def persistence(self) -> PersistenceAnalysis:
        return self._persistence

    def classification(self, assoc: int | None = None) -> ClassificationTable:
        """Classification table at ``assoc`` working ways per set.

        ``assoc=None`` means the nominal (fault-free) associativity.
        By LRU set independence, the entry of a reference to set ``s``
        in the table for ``assoc = W - f`` is its classification when
        set ``s`` has ``f`` faulty ways — regardless of other sets.
        """
        if assoc is None:
            assoc = self._geometry.ways
        if assoc < 0 or assoc > self._geometry.ways:
            raise AnalysisError(
                f"associativity {assoc} out of range "
                f"[0, {self._geometry.ways}]")
        if assoc not in self._tables:
            self._tables[assoc] = self._classify(assoc)
        return self._tables[assoc]

    def _classify(self, assoc: int) -> ClassificationTable:
        if assoc == 0:
            table = {
                block_id: tuple(ALWAYS_MISS for _ in references)
                for block_id, references in self._references.items()
            }
            return ClassificationTable(assoc, table, self._references)

        must = MustAnalysis(self._cfg, self._geometry, assoc)
        may = MayAnalysis(self._cfg, self._geometry, assoc)
        table: dict[int, tuple[Classification, ...]] = {}
        for block_id, references in self._references.items():
            hits = must.guaranteed_hits(block_id)
            cached = may.possibly_cached(block_id)
            classifications = []
            for reference, hit, may_hit in zip(references, hits, cached):
                if hit:
                    classifications.append(ALWAYS_HIT)
                    continue
                scope = self._persistence.scope_of(reference, assoc)
                if scope is not None:
                    classifications.append(
                        Classification(chmc=Chmc.FIRST_MISS, scope=scope))
                elif not may_hit:
                    classifications.append(ALWAYS_MISS)
                else:
                    classifications.append(NOT_CLASSIFIED)
            table[block_id] = tuple(classifications)
        return ClassificationTable(assoc, table, self._references)
