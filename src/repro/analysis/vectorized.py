"""Vectorised abstract cache states: numpy age vectors per cache set.

The dict-based Must/May analyses (:mod:`repro.analysis.must`,
:mod:`repro.analysis.may` — kept as the reference oracle) represent a
whole-cache state as ``set index -> {memory block: age}`` and run one
fixpoint per associativity.  This engine replaces both with a single
dense age vector over the program's resident blocks and a single
fixpoint pair, exploiting three structural facts of LRU abstract
interpretation:

**Encoding.**  Lay the distinct ``(set, memory block)`` pairs of the
program out set-major in one flat ``int8`` vector; entry ``i`` holds
the abstract age of its block, with the sentinel ``W`` (the nominal
associativity) meaning *absent*.  Under this encoding the Must and May
transfer become the *same* array operation — access of block ``b`` in
its set's segment ``seg``::

    old = v[b]                  # absent blocks read as W
    seg += (seg < old)          # blocks younger than the old bound age
    v[b] = 0

— and the joins become elementwise lattice operations over the whole
vector: Must join (intersection, oldest age) is ``np.maximum`` because
``max(age, W) = W`` drops blocks missing on either side; May join
(union, youngest age) is ``np.minimum``.  Set independence is free:
elementwise ops never mix segments.

**One fixpoint for all associativities.**  Age truncation at ``a``
(clip everything ``>= a`` to *absent*) commutes with that transfer and
with both joins, so the least fixpoint at associativity ``a < W`` is
exactly the fixpoint at ``W`` with ages thresholded at ``a``.  The
engine therefore runs Must and May **once** at the nominal ``W`` and
answers every degraded associativity ``W-1 .. 1`` by comparing the
recorded access-time ages against ``a`` — no further fixpoints, where
the dict oracle re-runs the full dataflow per associativity.

**Shared worklist.**  The fixpoint itself is the generic
:func:`repro.analysis.fixpoint.solve`, instantiated with array states;
both engines traverse the CFG identically, which keeps the
equivalence property testable one worklist implementation at a time.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fixpoint import solve
from repro.analysis.references import Reference
from repro.cache import CacheGeometry
from repro.cfg import CFG


class AgeVectorEngine:
    """Must/May access ages of one (CFG, geometry), fully vectorised.

    ``references`` is the per-block reference map produced by
    :func:`repro.analysis.references.all_references`.  The engine is
    lazy: each of the two fixpoints runs at most once, on first use,
    and :attr:`fixpoints_run` counts how many actually ran (the
    classification store answers warm runs without any).
    """

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 references: dict[int, tuple[Reference, ...]]) -> None:
        self._cfg = cfg
        self._ways = geometry.ways
        self.fixpoints_run = 0

        blocks_per_set: dict[int, set[int]] = {}
        for refs in references.values():
            for reference in refs:
                blocks_per_set.setdefault(reference.set_index,
                                          set()).add(reference.memory_block)
        flat_index: dict[tuple[int, int], int] = {}
        segments: dict[int, tuple[int, int]] = {}
        offset = 0
        for set_index in sorted(blocks_per_set):
            resident = sorted(blocks_per_set[set_index])
            segments[set_index] = (offset, offset + len(resident))
            for memory_block in resident:
                flat_index[(set_index, memory_block)] = offset
                offset += 1
        self._size = offset
        # int8 unless the sentinel W itself would overflow it.
        self._dtype = np.int8 if self._ways < 127 else np.int32
        #: Per CFG block, the fetch sequence as (segment start, segment
        #: stop, flat index, is_repeat) tuples.  ``is_repeat`` marks a
        #: fetch whose set's previous fetch *within the same CFG block*
        #: touched the same memory block: the block is then at age 0
        #: whatever the incoming state, so the access is an identity
        #: transfer and its recorded age is 0.  Sequential instruction
        #: fetches share cache lines, so this drops most of the
        #: per-access array work.
        self._accesses: dict[int, tuple[tuple[int, int, int, bool], ...]] = {}
        for block_id, refs in references.items():
            ops = []
            previous: dict[int, int] = {}  # set -> flat idx of last fetch
            for reference in refs:
                index = flat_index[(reference.set_index,
                                    reference.memory_block)]
                repeat = previous.get(reference.set_index) == index
                previous[reference.set_index] = index
                ops.append((*segments[reference.set_index], index, repeat))
            self._accesses[block_id] = tuple(ops)
        self._must_ages: dict[int, np.ndarray] | None = None
        self._may_ages: dict[int, np.ndarray] | None = None

    # -- the shared transfer ------------------------------------------
    def _apply(self, state: np.ndarray, start: int, stop: int,
               index: int) -> None:
        """One access, in place: age younger blocks, load at age 0."""
        old = state[index]
        if old:  # at age 0 nothing is younger — nothing to age
            segment = state[start:stop]
            np.add(segment, segment < old, out=segment, casting="unsafe")
            state[index] = 0

    def _transfer(self, block_id: int, state: np.ndarray) -> np.ndarray:
        state = state.copy()
        for start, stop, index, repeat in self._accesses[block_id]:
            if not repeat:
                self._apply(state, start, stop, index)
        return state

    def _solve(self, join) -> dict[int, np.ndarray]:
        self.fixpoints_run += 1
        initial = np.full(self._size, self._ways, dtype=self._dtype)
        return solve(self._cfg, initial=initial, join=join,
                     transfer=self._transfer, equal=np.array_equal)

    def _replay(self, in_states: dict[int, np.ndarray]
                ) -> dict[int, np.ndarray]:
        """Access-time age of every reference, from converged IN states."""
        ages: dict[int, np.ndarray] = {}
        for block_id, accesses in self._accesses.items():
            state = in_states[block_id].copy()
            block_ages = np.zeros(len(accesses), dtype=self._dtype)
            for position, (start, stop, index, repeat) in enumerate(accesses):
                if not repeat:  # repeats stay at the pre-filled age 0
                    block_ages[position] = state[index]
                    self._apply(state, start, stop, index)
            ages[block_id] = block_ages
        return ages

    # -- results -------------------------------------------------------
    def must_ages(self) -> dict[int, np.ndarray]:
        """Upper-bound LRU age of each reference at its own fetch.

        ``ages[block_id][i] < a`` iff reference ``i`` is a guaranteed
        hit at associativity ``a`` — for *every* ``a`` in ``[1, W]``,
        from the single nominal-associativity fixpoint.
        """
        if self._must_ages is None:
            self._must_ages = self._replay(self._solve(np.maximum))
        return self._must_ages

    def may_ages(self) -> dict[int, np.ndarray]:
        """Lower-bound LRU age of each reference at its own fetch.

        ``ages[block_id][i] >= a`` iff reference ``i`` misses on every
        path at associativity ``a`` (always-miss).
        """
        if self._may_ages is None:
            self._may_ages = self._replay(self._solve(np.minimum))
        return self._may_ages

    def guaranteed_hits(self, block_id: int, assoc: int) -> np.ndarray:
        """Vector of always-hit verdicts, any associativity, no fixpoint."""
        return self.must_ages()[block_id] < assoc

    def possibly_cached(self, block_id: int, assoc: int) -> np.ndarray:
        """Vector of may-hit verdicts, any associativity, no fixpoint."""
        return self.may_ages()[block_id] < assoc
