"""Vectorised abstract cache states: numpy age vectors per cache set.

The dict-based Must/May analyses (:mod:`repro.analysis.must`,
:mod:`repro.analysis.may` — kept as the reference oracle) represent a
whole-cache state as ``set index -> {memory block: age}`` and run one
fixpoint per associativity.  This engine replaces both with a single
dense age vector over the program's resident blocks and a single
fixpoint pair, exploiting three structural facts of LRU abstract
interpretation:

**Encoding.**  Lay the distinct ``(set, memory block)`` pairs of the
program out set-major in one flat ``int8`` vector; entry ``i`` holds
the abstract age of its block, with the sentinel ``W`` (the nominal
associativity) meaning *absent*.  Under this encoding the Must and May
transfer become the *same* array operation — access of block ``b`` in
its set's segment ``seg``::

    old = v[b]                  # absent blocks read as W
    seg += (seg < old)          # blocks younger than the old bound age
    v[b] = 0

— and the joins become elementwise lattice operations over the whole
vector: Must join (intersection, oldest age) is ``np.maximum`` because
``max(age, W) = W`` drops blocks missing on either side; May join
(union, youngest age) is ``np.minimum``.  Set independence is free:
elementwise ops never mix segments.

**One fixpoint for all associativities.**  Age truncation at ``a``
(clip everything ``>= a`` to *absent*) commutes with that transfer and
with both joins, so the least fixpoint at associativity ``a < W`` is
exactly the fixpoint at ``W`` with ages thresholded at ``a``.  The
engine therefore runs Must and May **once** at the nominal ``W`` and
answers every degraded associativity ``W-1 .. 1`` by comparing the
recorded access-time ages against ``a`` — no further fixpoints, where
the dict oracle re-runs the full dataflow per associativity.

**Per-set early exit.**  Elementwise transfers and joins never mix
set segments, so the joint fixpoint is the product of independent
per-set fixpoints.  The engine's worklist tracks which *segments* of a
block's OUT state actually changed and re-propagates only those: a
converged set is blanked out of the transfer and the join entirely
(:attr:`AgeVectorEngine.segments_blanked` counts the skipped
segment-visits), so one slow cache set no longer drags every other set
through extra iterations.  The result is the same least fixpoint —
per-set LFPs recombine into the joint LFP — and the equivalence
property tests against the dict oracle pin that at every
associativity.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

from repro.analysis.fixpoint import solve
from repro.analysis.references import Reference
from repro.cache import CacheGeometry
from repro.cfg import CFG
from repro.errors import AnalysisError

#: Safety valve against non-monotone transfer bugs (mirrors the
#: generic worklist solver's limit).
_MAX_VISITS_PER_BLOCK = 10_000


class AgeVectorEngine:
    """Must/May access ages of one (CFG, geometry), fully vectorised.

    ``references`` is the per-block reference map produced by
    :func:`repro.analysis.references.all_references`.  The engine is
    lazy: each of the two fixpoints runs at most once, on first use,
    and :attr:`fixpoints_run` counts how many actually ran (the
    classification store answers warm runs without any).
    """

    def __init__(self, cfg: CFG, geometry: CacheGeometry,
                 references: dict[int, tuple[Reference, ...]]) -> None:
        self._cfg = cfg
        self._ways = geometry.ways
        self.fixpoints_run = 0

        blocks_per_set: dict[int, set[int]] = {}
        for refs in references.values():
            for reference in refs:
                blocks_per_set.setdefault(reference.set_index,
                                          set()).add(reference.memory_block)
        flat_index: dict[tuple[int, int], int] = {}
        segments: dict[int, tuple[int, int]] = {}
        offset = 0
        for set_index in sorted(blocks_per_set):
            resident = sorted(blocks_per_set[set_index])
            segments[set_index] = (offset, offset + len(resident))
            for memory_block in resident:
                flat_index[(set_index, memory_block)] = offset
                offset += 1
        self._size = offset
        #: Segment bounds in layout order, and their start offsets (for
        #: ``np.add.reduceat``-based per-segment change detection).
        self._segments: tuple[tuple[int, int], ...] = tuple(
            segments[set_index] for set_index in sorted(segments))
        self._seg_starts = np.fromiter(
            (start for start, _stop in self._segments), dtype=np.intp,
            count=len(self._segments))
        seg_of_start = {start: position for position, (start, _stop)
                        in enumerate(self._segments)}
        # int8 unless the sentinel W itself would overflow it.
        self._dtype = np.int8 if self._ways < 127 else np.int32
        #: Per CFG block, the fetch sequence as (segment start, segment
        #: stop, flat index, is_repeat, segment position) tuples.
        #: ``is_repeat`` marks a fetch whose set's previous fetch
        #: *within the same CFG block* touched the same memory block:
        #: the block is then at age 0 whatever the incoming state, so
        #: the access is an identity transfer and its recorded age is
        #: 0.  Sequential instruction fetches share cache lines, so
        #: this drops most of the per-access array work.  The segment
        #: position lets the worklist blank accesses of converged sets
        #: out of the transfer.
        self._accesses: dict[
            int, tuple[tuple[int, int, int, bool, int], ...]] = {}
        for block_id, refs in references.items():
            ops = []
            previous: dict[int, int] = {}  # set -> flat idx of last fetch
            for reference in refs:
                index = flat_index[(reference.set_index,
                                    reference.memory_block)]
                repeat = previous.get(reference.set_index) == index
                previous[reference.set_index] = index
                start, stop = segments[reference.set_index]
                ops.append((start, stop, index, repeat,
                            seg_of_start[start]))
            self._accesses[block_id] = tuple(ops)
        self._must_ages: dict[int, np.ndarray] | None = None
        self._may_ages: dict[int, np.ndarray] | None = None
        #: Segment-visits skipped because the segment's set had already
        #: converged at that block (the per-set early exit at work).
        self.segments_blanked = 0

    # -- the shared transfer ------------------------------------------
    def _apply(self, state: np.ndarray, start: int, stop: int,
               index: int) -> None:
        """One access, in place: age younger blocks, load at age 0."""
        old = state[index]
        if old:  # at age 0 nothing is younger — nothing to age
            segment = state[start:stop]
            np.add(segment, segment < old, out=segment, casting="unsafe")
            state[index] = 0

    def _transfer_full(self, state: np.ndarray, block_id: int) -> None:
        """Apply the whole access sequence of ``block_id`` in place."""
        for start, stop, index, repeat, _seg in self._accesses[block_id]:
            if not repeat:
                self._apply(state, start, stop, index)

    def _transfer_partial(self, state: np.ndarray, block_id: int,
                          todo) -> None:
        """Apply only the accesses touching the pending segments."""
        for start, stop, index, repeat, seg in self._accesses[block_id]:
            if not repeat and seg in todo:
                self._apply(state, start, stop, index)

    def _transfer(self, block_id: int, state: np.ndarray) -> np.ndarray:
        state = state.copy()
        self._transfer_full(state, block_id)
        return state

    def _initial_state(self) -> np.ndarray:
        """The all-absent entry state (sentinel ``W`` everywhere).

        Overridable: the stacked multi-geometry engine fills each
        geometry's segments with that geometry's own sentinel.
        """
        return np.full(self._size, self._ways, dtype=self._dtype)

    def _solve(self, join) -> dict[int, np.ndarray]:
        self.fixpoints_run += 1
        initial = self._initial_state()
        if not self._segments:
            # No references at all: the generic solver handles the
            # trivial graph without any per-set machinery.
            return solve(self._cfg, initial=initial, join=join,
                         transfer=self._transfer, equal=np.array_equal)
        return self._solve_segmented(join, initial)

    def _solve_segmented(self, join,
                         initial: np.ndarray) -> dict[int, np.ndarray]:
        """Worklist fixpoint with per-set convergence tracking.

        Each worklist entry carries the set segments still *pending*
        at that block; a visit recomputes the IN state, applies the
        transfer, and propagates only the segments whose OUT slice
        actually changed.  Segments of converged sets are blanked out
        of both the join and the transfer (counted in
        :attr:`segments_blanked`).  Because elementwise transfer and
        joins never mix segments, this computes the per-set least
        fixpoints — whose concatenation is exactly the joint least
        fixpoint the generic solver finds.
        """
        cfg = self._cfg
        order = cfg.reverse_postorder()
        position = {block_id: rank for rank, block_id in enumerate(order)}
        successors = {block_id: sorted(cfg.successors(block_id),
                                       key=position.__getitem__)
                      for block_id in order}
        predecessors = {block_id: tuple(cfg.predecessors(block_id))
                        for block_id in order}
        segments = self._segments
        num_segments = len(segments)
        all_segments = range(num_segments)
        pending: dict[int, set[int]] = {block_id: set(all_segments)
                                        for block_id in order}
        out_states: dict[int, np.ndarray] = {}
        visits: Counter[int] = Counter()

        worklist: deque[int] = deque(order)
        queued = set(order)
        while worklist:
            block_id = worklist.popleft()
            queued.discard(block_id)
            todo = pending[block_id]
            pending[block_id] = set()
            if not todo:
                continue
            visits[block_id] += 1
            if visits[block_id] > _MAX_VISITS_PER_BLOCK:
                raise AnalysisError(
                    f"fixpoint did not converge at block {block_id} "
                    f"(>{_MAX_VISITS_PER_BLOCK} visits)")
            old_out = out_states.get(block_id)
            full = len(todo) == num_segments
            if not full:
                self.segments_blanked += num_segments - len(todo)
            if full:
                # Whole state pending: one vectorised join + transfer.
                new_out = self._in_state_full(block_id, initial, join,
                                              predecessors, out_states)
                self._transfer_full(new_out, block_id)
            else:
                # Converged segments keep their previous OUT slices;
                # only pending segments pay join + transfer work.
                new_out = old_out.copy()
                self._in_segments(block_id, todo, initial, join,
                                  predecessors, out_states, new_out)
                self._transfer_partial(new_out, block_id, todo)
            if old_out is None:
                changed = todo
            else:
                difference = np.not_equal(old_out, new_out)
                if not difference.any():
                    continue
                mask = np.add.reduceat(difference, self._seg_starts) > 0
                changed = set(np.nonzero(mask)[0].tolist())
            out_states[block_id] = new_out
            for successor in successors[block_id]:
                pending[successor] |= changed
                if successor not in queued:
                    worklist.append(successor)
                    queued.add(successor)

        # One final pass so IN states reflect the converged OUT states
        # of *all* predecessors (including back edges processed last).
        return {block_id: self._in_state_full(block_id, initial, join,
                                              predecessors, out_states)
                for block_id in order}

    def _in_state_full(self, block_id: int, initial: np.ndarray, join,
                       predecessors, out_states) -> np.ndarray:
        """Whole-vector IN state (join of computed predecessor OUTs)."""
        if block_id == self._cfg.entry_id:
            return initial.copy()
        state: np.ndarray | None = None
        for predecessor in predecessors[block_id]:
            predecessor_out = out_states.get(predecessor)
            if predecessor_out is None:
                continue
            state = (predecessor_out.copy() if state is None
                     else join(state, predecessor_out))
        if state is None:
            raise AnalysisError(
                f"block {block_id} has no computed predecessor "
                "(unreachable?)")
        return state

    def _in_segments(self, block_id: int, todo, initial: np.ndarray,
                     join, predecessors, out_states,
                     target: np.ndarray) -> None:
        """Write the IN state of the pending segments into ``target``."""
        if block_id == self._cfg.entry_id:
            for seg in todo:
                start, stop = self._segments[seg]
                target[start:stop] = initial[start:stop]
            return
        computed = [out_states[predecessor]
                    for predecessor in predecessors[block_id]
                    if predecessor in out_states]
        if not computed:
            raise AnalysisError(
                f"block {block_id} has no computed predecessor "
                "(unreachable?)")
        for seg in todo:
            start, stop = self._segments[seg]
            slice_state = computed[0][start:stop]
            for other in computed[1:]:
                slice_state = join(slice_state, other[start:stop])
            target[start:stop] = slice_state

    def _replay(self, in_states: dict[int, np.ndarray]
                ) -> dict[int, np.ndarray]:
        """Access-time age of every reference, from converged IN states."""
        ages: dict[int, np.ndarray] = {}
        for block_id, accesses in self._accesses.items():
            state = in_states[block_id].copy()
            block_ages = np.zeros(len(accesses), dtype=self._dtype)
            for position, (start, stop, index, repeat,
                           _seg) in enumerate(accesses):
                if not repeat:  # repeats stay at the pre-filled age 0
                    block_ages[position] = state[index]
                    self._apply(state, start, stop, index)
            ages[block_id] = block_ages
        return ages

    # -- results -------------------------------------------------------
    def must_ages(self) -> dict[int, np.ndarray]:
        """Upper-bound LRU age of each reference at its own fetch.

        ``ages[block_id][i] < a`` iff reference ``i`` is a guaranteed
        hit at associativity ``a`` — for *every* ``a`` in ``[1, W]``,
        from the single nominal-associativity fixpoint.
        """
        if self._must_ages is None:
            self._must_ages = self._replay(self._solve(np.maximum))
        return self._must_ages

    def may_ages(self) -> dict[int, np.ndarray]:
        """Lower-bound LRU age of each reference at its own fetch.

        ``ages[block_id][i] >= a`` iff reference ``i`` misses on every
        path at associativity ``a`` (always-miss).
        """
        if self._may_ages is None:
            self._may_ages = self._replay(self._solve(np.minimum))
        return self._may_ages

    def guaranteed_hits(self, block_id: int, assoc: int) -> np.ndarray:
        """Vector of always-hit verdicts, any associativity, no fixpoint."""
        return self.must_ages()[block_id] < assoc

    def possibly_cached(self, block_id: int, assoc: int) -> np.ndarray:
        """Vector of may-hit verdicts, any associativity, no fixpoint."""
        return self.may_ages()[block_id] < assoc
