"""Dominators and natural-loop detection.

The IPET loop-bound constraints and the persistence analysis both need
the loop nesting forest: which blocks belong to which loop, the loop
entry edges and the per-entry iteration bound (carried as an annotation
on the header block by the MiniC compiler, or set by hand on hand-built
CFGs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG, Edge
from repro.errors import CFGStructureError


def compute_dominators(cfg: CFG) -> dict[int, set[int]]:
    """Dominator sets per block (classic iterative data-flow solution).

    ``d in dominators[b]`` iff every path from the entry to ``b`` goes
    through ``d``.  Every block dominates itself.
    """
    order = cfg.reverse_postorder()
    all_blocks = set(order)
    entry = cfg.entry_id
    dominators: dict[int, set[int]] = {
        block_id: (set(all_blocks) if block_id != entry else {entry})
        for block_id in order
    }
    changed = True
    while changed:
        changed = False
        for block_id in order:
            if block_id == entry:
                continue
            preds = [p for p in cfg.predecessors(block_id) if p in all_blocks]
            if preds:
                new = set.intersection(*(dominators[p] for p in preds))
            else:
                new = set()
            new.add(block_id)
            if new != dominators[block_id]:
                dominators[block_id] = new
                changed = True
    return dominators


@dataclass
class Loop:
    """A natural loop.

    Attributes
    ----------
    header:
        Header block id (loops sharing a header are merged).
    body:
        Ids of all blocks in the loop, header included.
    back_edges:
        Edges from the body to the header.
    bound:
        Maximum header executions per loop entry (from the header
        block's ``loop_bound`` annotation).
    parent:
        Immediately enclosing loop's header id, or ``None``.
    depth:
        Nesting depth (outermost loop = 1).
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[Edge, ...]
    bound: int
    parent: int | None = None
    depth: int = 1
    children: list[int] = field(default_factory=list)

    def entry_edges(self, cfg: CFG) -> tuple[Edge, ...]:
        """Edges entering the loop from the outside (into the header)."""
        return tuple((pred, self.header)
                     for pred in cfg.predecessors(self.header)
                     if pred not in self.body)

    def contains(self, block_id: int) -> bool:
        return block_id in self.body


class LoopForest:
    """The loop nesting forest of a CFG."""

    def __init__(self, cfg: CFG, loops: dict[int, Loop]) -> None:
        self._cfg = cfg
        self._loops = loops  # keyed by header id
        self._membership: dict[int, list[int]] = {}
        for header, loop in loops.items():
            for block_id in loop.body:
                self._membership.setdefault(block_id, []).append(header)
        # Order memberships innermost-first for quick scope lookups.
        for block_id, headers in self._membership.items():
            headers.sort(key=lambda h: -loops[h].depth)
        self._chains: dict[int, tuple[Loop, ...]] = {}

    @property
    def loops(self) -> dict[int, Loop]:
        """All loops, keyed by header block id (treat as read-only)."""
        return self._loops

    def loop(self, header: int) -> Loop:
        try:
            return self._loops[header]
        except KeyError as exc:
            raise CFGStructureError(f"no loop with header {header}") from exc

    def loops_containing(self, block_id: int) -> tuple[Loop, ...]:
        """Loops containing ``block_id``, innermost first."""
        chain = self._chains.get(block_id)
        if chain is None:
            chain = self._chains[block_id] = tuple(
                self._loops[h]
                for h in self._membership.get(block_id, ()))
        return chain

    def enclosing_chain(self, block_id: int) -> tuple[Loop, ...]:
        """Alias of :meth:`loops_containing` (innermost-first chain)."""
        return self.loops_containing(block_id)

    def is_back_edge(self, edge: Edge) -> bool:
        src, dst = edge
        loop = self._loops.get(dst)
        return loop is not None and (src, dst) in loop.back_edges

    def headers(self) -> tuple[int, ...]:
        return tuple(sorted(self._loops))

    def __len__(self) -> int:
        return len(self._loops)


def find_loops(cfg: CFG) -> LoopForest:
    """Detect natural loops and assemble the nesting forest.

    Back edges are edges ``u -> h`` where ``h`` dominates ``u``.  All
    back edges to the same header are merged into one loop.  Every
    header must carry a ``loop_bound`` annotation; an unannotated
    header is a hard error because IPET would be unbounded.

    Irreducible graphs (a cycle whose "header" does not dominate the
    rest of the cycle) are rejected: the MiniC compiler never produces
    them, and the analyses do not support them.
    """
    dominators = compute_dominators(cfg)
    back_edges_by_header: dict[int, list[Edge]] = {}
    for src, dst in cfg.edges():
        if dst in dominators[src]:
            back_edges_by_header.setdefault(dst, []).append((src, dst))

    loops: dict[int, Loop] = {}
    for header, back_edges in back_edges_by_header.items():
        body = {header}
        worklist = [src for src, _dst in back_edges]
        while worklist:
            node = worklist.pop()
            if node in body:
                continue
            body.add(node)
            worklist.extend(cfg.predecessors(node))
        bound = cfg.block(header).loop_bound
        if bound is None:
            raise CFGStructureError(
                f"loop header {cfg.block(header)} lacks a loop bound")
        loops[header] = Loop(header=header, body=frozenset(body),
                             back_edges=tuple(sorted(back_edges)),
                             bound=bound)

    _reject_irreducible(cfg, dominators, loops)
    _link_nesting(loops)
    return LoopForest(cfg, loops)


def _reject_irreducible(cfg: CFG, dominators: dict[int, set[int]],
                        loops: dict[int, Loop]) -> None:
    """Detect cycles not captured by any natural loop.

    In a reducible CFG every cycle contains exactly one back edge (to
    its dominating header).  We check that removing all detected back
    edges leaves an acyclic graph.
    """
    removed = {edge for loop in loops.values() for edge in loop.back_edges}
    indegree = {block_id: 0 for block_id in cfg.block_ids()}
    for src, dst in cfg.edges():
        if (src, dst) not in removed:
            indegree[dst] += 1
    queue = [b for b, deg in indegree.items() if deg == 0]
    visited = 0
    while queue:
        node = queue.pop()
        visited += 1
        for succ in cfg.successors(node):
            if (node, succ) in removed:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if visited != len(cfg):
        raise CFGStructureError(
            f"CFG {cfg.name!r} is irreducible (cycle without a dominating "
            "header)")


def _link_nesting(loops: dict[int, Loop]) -> None:
    """Fill parent/children/depth by body inclusion."""
    headers = sorted(loops, key=lambda h: len(loops[h].body))
    for header in headers:
        loop = loops[header]
        best: Loop | None = None
        for other_header in headers:
            if other_header == header:
                continue
            other = loops[other_header]
            if header in other.body and loop.body < other.body:
                if best is None or len(other.body) < len(best.body):
                    best = other
        if best is not None:
            loop.parent = best.header
            best.children.append(header)
    # Depths: walk up the parent chain.
    for loop in loops.values():
        depth = 1
        cursor = loop.parent
        while cursor is not None:
            depth += 1
            cursor = loops[cursor].parent
        loop.depth = depth
