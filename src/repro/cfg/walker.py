"""Random generation of structurally feasible execution paths.

IPET bounds the execution time of every *structurally feasible* path:
a path from entry to exit that respects the loop bounds.  The walker
below samples such paths, which gives the validation harness concrete
executions to replay on the faulty-cache simulator — if the analysis
ever under-estimated one of these paths, it would be unsound.

The walker assumes the structured loops produced by the MiniC compiler
(and mirrored by hand-built test CFGs): every loop is natural, is
entered only through its header, and its header has at least one
successor outside the loop body.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cfg.graph import CFG
from repro.cfg.loops import LoopForest, find_loops
from repro.errors import SimulationError

#: Safety valve: maximum path length before the walker gives up.
_MAX_STEPS = 5_000_000


@dataclass(frozen=True)
class WalkResult:
    """A sampled structurally feasible path."""

    block_ids: tuple[int, ...]
    #: Fetch addresses of the whole path, in execution order.
    addresses: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.block_ids)


class PathWalker:
    """Samples structurally feasible paths of a CFG.

    Parameters
    ----------
    cfg:
        A validated CFG.
    forest:
        Pre-computed loop forest; computed on demand when omitted.
    """

    def __init__(self, cfg: CFG, forest: LoopForest | None = None) -> None:
        cfg.validate()
        self._cfg = cfg
        self._forest = forest if forest is not None else find_loops(cfg)

    @property
    def cfg(self) -> CFG:
        return self._cfg

    def walk(self, rng: random.Random, *,
             maximize_iterations: bool = False) -> WalkResult:
        """Sample one path from entry to exit.

        With ``maximize_iterations`` every loop runs to its bound and
        the walk still picks branches at random — useful for producing
        long (closer to worst-case) but still feasible paths.
        """
        cfg, forest = self._cfg, self._forest
        loops = forest.loops
        remaining: dict[int, int] = {}
        block_ids: list[int] = []
        addresses: list[int] = []

        current = cfg.entry_id
        steps = 0
        while True:
            steps += 1
            if steps > _MAX_STEPS:
                raise SimulationError(
                    f"path exceeded {_MAX_STEPS} blocks; check loop bounds")
            block_ids.append(current)
            addresses.extend(cfg.block(current).addresses)
            if current in loops:
                # Executing a loop header consumes one header execution.
                if current not in remaining:
                    raise SimulationError(
                        f"reached header {current} without entering its "
                        "loop (irreducible or unstructured CFG)")
                remaining[current] -= 1
            if current == cfg.exit_id:
                break
            current = self._choose_successor(current, remaining, rng,
                                             maximize_iterations)
        return WalkResult(block_ids=tuple(block_ids),
                          addresses=tuple(addresses))

    # ------------------------------------------------------------------
    def _choose_successor(self, current: int, remaining: dict[int, int],
                          rng: random.Random,
                          maximize_iterations: bool) -> int:
        cfg, forest = self._cfg, self._forest
        loops = forest.loops
        options = []
        for succ in cfg.successors(current):
            if not self._edge_allowed(current, succ, remaining):
                continue
            options.append(succ)
        if not options:
            raise SimulationError(
                f"walker stuck at block {current} (no feasible successor)")

        if maximize_iterations and current in loops:
            # Prefer staying in the loop while iterations remain.
            body = loops[current].body
            staying = [succ for succ in options if succ in body]
            if staying and remaining.get(current, 0) > 0:
                options = staying
            elif remaining.get(current, 0) == 0:
                options = [succ for succ in options if succ not in body]

        choice = options[0] if len(options) == 1 else rng.choice(options)
        self._account_loop_transitions(current, choice, remaining, rng,
                                       maximize_iterations)
        return choice

    def _edge_allowed(self, src: int, dst: int,
                      remaining: dict[int, int]) -> bool:
        """Is traversing (src, dst) consistent with the loop budgets?"""
        forest = self._forest
        loops = forest.loops
        # Leaving via an edge that re-enters some header must have
        # budget for one more header execution.
        if dst in loops and src in loops[dst].body:
            if remaining.get(dst, 0) <= 0:
                return False
        # A header whose budget ran out must leave its own loop.
        if src in loops and remaining.get(src, 0) <= 0:
            if dst in loops[src].body:
                return False
        return True

    def _account_loop_transitions(self, src: int, dst: int,
                                  remaining: dict[int, int],
                                  rng: random.Random,
                                  maximize_iterations: bool) -> None:
        """Sample budgets on loop entry; drop budgets on loop exit."""
        forest = self._forest
        loops = forest.loops
        if dst in loops and src not in loops[dst].body:
            bound = loops[dst].bound
            budget = bound if maximize_iterations else rng.randint(1, bound)
            remaining[dst] = budget
        # Exiting a loop invalidates its budget (re-entry resamples).
        for header, loop in loops.items():
            if src in loop.body and dst not in loop.body:
                remaining.pop(header, None)
