"""Basic blocks: maximal straight-line instruction sequences."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CFGStructureError
from repro.isa import Instruction, InstructionKind


@dataclass
class BasicBlock:
    """A basic block of the (possibly virtually inlined) CFG.

    Attributes
    ----------
    block_id:
        Unique id within the owning :class:`~repro.cfg.graph.CFG`.
    label:
        Human-readable name (function-qualified).
    instructions:
        The block's instructions, in address order.  May be empty only
        for synthetic entry/exit blocks.
    loop_bound:
        If this block is a loop header, the maximum number of times the
        header may execute *per entry into the loop* (for a classic
        ``for``/``while`` loop with at most N body iterations this is
        ``N + 1``, counting the final failing test).  ``None`` on
        non-header blocks.
    context:
        Call-string context from virtual inlining (empty for the root
        function).  Blocks that share code across contexts have equal
        instruction addresses but distinct contexts.
    """

    block_id: int
    label: str
    instructions: tuple[Instruction, ...] = ()
    loop_bound: int | None = None
    context: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.instructions = tuple(self.instructions)
        if self.loop_bound is not None and self.loop_bound < 1:
            raise CFGStructureError(
                f"block {self.label!r}: loop bound must be >= 1, "
                f"got {self.loop_bound}")
        for earlier, later in zip(self.instructions, self.instructions[1:]):
            if later.address <= earlier.address:
                raise CFGStructureError(
                    f"block {self.label!r}: instruction addresses must be "
                    "strictly increasing")

    @property
    def addresses(self) -> tuple[int, ...]:
        """Fetch addresses of the block's instructions, in order."""
        return tuple(instruction.address
                     for instruction in self.instructions)

    @property
    def start_address(self) -> int | None:
        return self.instructions[0].address if self.instructions else None

    @property
    def call_target(self) -> str | None:
        """Callee name if the block ends with a call, else ``None``."""
        if (self.instructions
                and self.instructions[-1].kind is InstructionKind.CALL):
            return self.instructions[-1].target
        return None

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    def qualified_label(self) -> str:
        """Label prefixed with the call context, for diagnostics."""
        if not self.context:
            return self.label
        return "/".join(self.context) + "/" + self.label

    def __str__(self) -> str:
        return (f"BB{self.block_id}[{self.qualified_label()}: "
                f"{self.instruction_count} instrs]")
