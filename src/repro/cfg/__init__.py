"""Control-flow graphs and loop structure.

The static analyses operate on a program-level CFG obtained by
*virtual inlining*: every function body is duplicated per call context
(so the analysis is context sensitive) while instruction addresses are
shared (so the cache sees one copy of the code, as in the real binary).
"""

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import CFG, Edge
from repro.cfg.loops import Loop, LoopForest, compute_dominators, find_loops
from repro.cfg.walker import PathWalker, WalkResult

__all__ = [
    "BasicBlock",
    "CFG",
    "Edge",
    "Loop",
    "LoopForest",
    "compute_dominators",
    "find_loops",
    "PathWalker",
    "WalkResult",
]
