"""The control-flow graph container.

A :class:`CFG` owns basic blocks and directed edges between them, with
a unique entry block and a unique exit block.  It is built mutably
(``add_block`` / ``add_edge``) and then treated as read-only by the
analyses; :meth:`CFG.validate` checks the structural requirements the
analyses rely on.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cfg.basic_block import BasicBlock
from repro.errors import CFGStructureError

#: A CFG edge as a (source block id, destination block id) pair.
Edge = tuple[int, int]


class CFG:
    """Directed control-flow graph with unique entry and exit blocks."""

    def __init__(self, name: str = "cfg") -> None:
        self.name = name
        self._blocks: dict[int, BasicBlock] = {}
        self._successors: dict[int, list[int]] = {}
        self._predecessors: dict[int, list[int]] = {}
        self._entry_id: int | None = None
        self._exit_id: int | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_block(self, label: str, instructions=(), *,
                  loop_bound: int | None = None,
                  context: tuple[str, ...] = ()) -> BasicBlock:
        """Create, register and return a fresh block."""
        block = BasicBlock(block_id=self._next_id, label=label,
                           instructions=tuple(instructions),
                           loop_bound=loop_bound, context=tuple(context))
        self._next_id += 1
        self.add_block(block)
        return block

    def add_block(self, block: BasicBlock) -> None:
        if block.block_id in self._blocks:
            raise CFGStructureError(f"duplicate block id {block.block_id}")
        self._blocks[block.block_id] = block
        self._successors[block.block_id] = []
        self._predecessors[block.block_id] = []
        self._next_id = max(self._next_id, block.block_id + 1)

    def add_edge(self, src: int, dst: int) -> None:
        if src not in self._blocks or dst not in self._blocks:
            raise CFGStructureError(f"edge ({src}, {dst}) references "
                                    "unknown block")
        if dst in self._successors[src]:
            raise CFGStructureError(f"duplicate edge ({src}, {dst})")
        self._successors[src].append(dst)
        self._predecessors[dst].append(src)

    def set_entry(self, block_id: int) -> None:
        if block_id not in self._blocks:
            raise CFGStructureError(f"unknown entry block {block_id}")
        self._entry_id = block_id

    def set_exit(self, block_id: int) -> None:
        if block_id not in self._blocks:
            raise CFGStructureError(f"unknown exit block {block_id}")
        self._exit_id = block_id

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def entry_id(self) -> int:
        if self._entry_id is None:
            raise CFGStructureError(f"CFG {self.name!r} has no entry block")
        return self._entry_id

    @property
    def exit_id(self) -> int:
        if self._exit_id is None:
            raise CFGStructureError(f"CFG {self.name!r} has no exit block")
        return self._exit_id

    def block(self, block_id: int) -> BasicBlock:
        try:
            return self._blocks[block_id]
        except KeyError as exc:
            raise CFGStructureError(f"unknown block id {block_id}") from exc

    @property
    def blocks(self) -> dict[int, BasicBlock]:
        """Mapping of id to block (treat as read-only)."""
        return self._blocks

    def block_ids(self) -> tuple[int, ...]:
        return tuple(self._blocks)

    def successors(self, block_id: int) -> tuple[int, ...]:
        return tuple(self._successors[block_id])

    def predecessors(self, block_id: int) -> tuple[int, ...]:
        return tuple(self._predecessors[block_id])

    def edges(self) -> list[Edge]:
        """All edges, in deterministic order."""
        return [(src, dst)
                for src in sorted(self._successors)
                for dst in self._successors[src]]

    def __len__(self) -> int:
        return len(self._blocks)

    def instruction_count(self) -> int:
        """Total instructions over all blocks (contexts counted once each)."""
        return sum(block.instruction_count
                   for block in self._blocks.values())

    def distinct_addresses(self) -> set[int]:
        """Distinct fetch addresses (shared across inlined contexts)."""
        return {address for block in self._blocks.values()
                for address in block.addresses}

    def digest(self) -> str:
        """Content digest of everything the analyses read off the CFG.

        Covers block ids, instruction addresses/sizes/kinds, call
        targets, loop bounds, inlining contexts, the edge list and the
        entry/exit designation — i.e. the full input of the cache
        analyses and of the IPET flow polytope.  Two CFGs with equal
        digests produce identical classifications (for a given
        geometry) and an identical polytope, which is what lets the
        persistent solve cache (:mod:`repro.solve.store`) key solved
        objectives across runs.  Labels are excluded: they are
        diagnostics only.
        """
        import hashlib

        hasher = hashlib.sha256()

        def feed(*parts: object) -> None:
            hasher.update(repr(parts).encode("utf-8"))

        feed("cfg", self.name, self._entry_id, self._exit_id)
        for block_id in sorted(self._blocks):
            block = self._blocks[block_id]
            feed("block", block_id, block.loop_bound, block.context)
            for instruction in block.instructions:
                feed(instruction.address, instruction.kind.value,
                     instruction.target)
        for edge in self.edges():
            feed("edge", edge)
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def reverse_postorder(self) -> list[int]:
        """Block ids in reverse postorder from the entry (stable)."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, Iterator[int]]] = []
        seen.add(self.entry_id)
        stack.append((self.entry_id, iter(self._successors[self.entry_id])))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self._successors[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def reachable_from_entry(self) -> set[int]:
        return set(self.reverse_postorder())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants required by the analyses.

        * entry and exit are set; the entry has no predecessors and the
          exit has no successors;
        * every block is reachable from the entry;
        * the exit is reachable from every block (no trapped states).
        """
        entry, exit_ = self.entry_id, self.exit_id
        if self._predecessors[entry]:
            raise CFGStructureError("entry block must have no predecessors")
        if self._successors[exit_]:
            raise CFGStructureError("exit block must have no successors")
        reachable = self.reachable_from_entry()
        unreachable = set(self._blocks) - reachable
        if unreachable:
            raise CFGStructureError(
                f"unreachable blocks: {sorted(unreachable)}")
        # Reverse reachability from the exit.
        co_reachable: set[int] = {exit_}
        worklist = [exit_]
        while worklist:
            node = worklist.pop()
            for pred in self._predecessors[node]:
                if pred not in co_reachable:
                    co_reachable.add(pred)
                    worklist.append(pred)
        stuck = set(self._blocks) - co_reachable
        if stuck:
            raise CFGStructureError(
                f"blocks cannot reach the exit: {sorted(stuck)}")

    def __str__(self) -> str:
        return (f"CFG({self.name!r}: {len(self._blocks)} blocks, "
                f"{sum(map(len, self._successors.values()))} edges)")
