"""Reusable control-flow shapes for the benchmark stand-ins.

The Mälardalen programs are built from a handful of recurring idioms —
decision chains compiled from ``switch``, guarded swaps in sorting
kernels, accumulation bodies in DSP loops.  These helpers keep the
25 program definitions short and the shapes consistent.
"""

from __future__ import annotations

from repro.minic import Compute, If, Loop, Stmt


def if_chain(cases: int, units_per_case: int,
             guard_units: int = 2) -> list[Stmt]:
    """A ``switch``-like chain of ``cases`` sequential if-blocks.

    gcc -O0 lowers dense switches to compare-and-branch chains; each
    case is a guard plus a straight-line body.  The footprint grows
    linearly with ``cases`` — the idiom behind cover/nsichneu-style
    code that exceeds the cache capacity.
    """
    return [If([Compute(units_per_case)], note=f"case{i}")
            for i in range(cases)] if guard_units <= 0 else [
        stmt
        for i in range(cases)
        for stmt in (Compute(guard_units),
                     If([Compute(units_per_case)], note=f"case{i}"))
    ]


def guarded_swap(work_units: int = 10) -> Stmt:
    """The compare-and-swap idiom of the sorting kernels."""
    return If([Compute(work_units)], note="swap")


def accumulate(units: int) -> Stmt:
    """A multiply-accumulate style straight-line body."""
    return Compute(units, note="acc")


def nested_loops(bounds: list[int], body: list[Stmt],
                 per_level_units: int = 3) -> Stmt:
    """Counted loops nested to ``len(bounds)`` levels around ``body``.

    Each level contributes ``per_level_units`` of bookkeeping code
    before its inner loop, like index arithmetic in the originals.
    """
    inner: list[Stmt] = body
    for bound in reversed(bounds):
        level_body = ([Compute(per_level_units)] + inner
                      if per_level_units > 0 else inner)
        inner = [Loop(bound, level_body)]
    [result] = inner
    return result
