"""matmult — 20x20 integer matrix multiplication.

Two initialisation nests and the classic triple nest whose innermost
MAC body executes 8000 times.  The kernel is small (a couple of lines
per set); the paper uses matmult in Figure 4 to illustrate reading the
stacked SRB/RW gains.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program
from repro.suite.shapes import nested_loops


def build() -> Program:
    main = Function("main", [
        nested_loops([20, 20], [Compute(4, "init A")], per_level_units=2),
        nested_loops([20, 20], [Compute(4, "init B")], per_level_units=2),
        nested_loops([20, 20, 20], [Compute(60, "C[i][j] += A[i][k]*B[k][j] (O0 indexing)")],
                     per_level_units=3),
        Compute(3, "checksum"),
    ])
    return Program([main], name="matmult")
