"""adpcm — CCITT G.722 adaptive differential PCM encoder/decoder.

The largest Mälardalen benchmark used in the paper (Figure 3 plots its
exceedance curves): a sample loop driving a pipeline of filter and
quantiser helpers.  The stand-in keeps the call structure — a main
loop invoking quantiser, filter and predictor-update functions, each
with its own small loops and decision code — giving a multi-KB
footprint with mixed spatial and temporal locality (category 4
behaviour in Figure 4).
"""

from __future__ import annotations

from repro.minic import Call, Compute, Function, If, Loop, Program
from repro.suite.shapes import if_chain


def build() -> Program:
    quantl = Function("quantl", [
        Compute(6, "log search setup"),
        Loop(6, [Compute(5, "table compare"), If([Compute(3, "match")])]),
        Compute(8, "quantised code"),
    ])
    logscl = Function("logscl", [Compute(14, "log scale update")])
    scalel = Function("scalel", [Compute(11, "linear scale")])
    upzero = Function("upzero", [
        Compute(5),
        Loop(6, [Compute(7, "zero-section coefficient update")]),
    ])
    uppol2 = Function("uppol2", [
        Compute(10), If([Compute(5)], [Compute(5)], "sign logic"),
        Compute(6),
    ])
    uppol1 = Function("uppol1", [
        Compute(8), If([Compute(4)], [Compute(4)]), Compute(5),
    ])
    filtez = Function("filtez", [
        Loop(6, [Compute(6, "zero-section MAC")]), Compute(4),
    ])
    filtep = Function("filtep", [Compute(12, "pole-section filter")])

    encode = Function("encode", [
        Call("filtez"), Call("filtep"),
        Compute(8, "prediction difference"),
        Call("quantl"),
        Call("logscl"), Call("scalel"),
        Call("upzero"), Call("uppol2"), Call("uppol1"),
        Compute(6, "code packing"),
    ])
    decode = Function("decode", [
        Call("filtez"), Call("filtep"),
        Compute(5, "reconstruct"),
        *if_chain(4, 6),  # dequantiser decision tree
        Call("logscl"), Call("scalel"),
        Call("upzero"), Call("uppol2"), Call("uppol1"),
        Compute(5),
    ])

    main = Function("main", [
        Compute(12, "state initialisation"),
        Loop(24, [Compute(6, "filter bank init")]),
        Loop(100, [
            Compute(6, "fetch sample pair"),
            Call("encode"),
            Call("decode"),
            Compute(4, "store outputs"),
        ]),
        Compute(8, "teardown"),
    ])
    return Program([main, encode, decode, quantl, logscl, scalel, upzero,
                    uppol2, uppol1, filtez, filtep], name="adpcm")
