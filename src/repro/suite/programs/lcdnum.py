"""lcdnum — 7-segment LCD digit decoder.

Ten iterations of read-nibble / decode-through-switch; the decoder is
a ten-case chain.  Tiny code, dominated by the decision chain.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program
from repro.suite.shapes import if_chain


def build() -> Program:
    main = Function("main", [
        Compute(3, "input setup"),
        Loop(10, [
            Compute(3, "fetch nibble"),
            *if_chain(10, 3, guard_units=1),
            Compute(2, "store segments"),
        ]),
    ])
    return Program([main], name="lcdnum")
