"""fft — 128-point radix-2 fast Fourier transform.

The butterfly nest (log2(128) = 7 outer stages over 64 butterflies)
calls a polynomial sine approximation for the twiddle factors, and a
bit-reversal permutation loop runs first.  The stage body plus the
sine helper span several lines per cache set, so much of the reuse
lives deeper than the MRU position — the benchmark with the smallest
RW gain in the paper (26%).
"""

from __future__ import annotations

from repro.minic import Call, Compute, Function, If, Loop, Program


def build() -> Program:
    sin_approx = Function("sin_approx", [
        Compute(8, "range reduction"),
        Loop(6, [Compute(18, "Taylor term")]),
        Compute(5, "sign fixup"),
    ])
    main = Function("main", [
        Compute(8, "twiddle setup"),
        Loop(128, [
            Compute(6, "bit-reverse index"),
            If([Compute(5, "swap pair")]),
        ]),
        Loop(7, [
            Compute(8, "stage setup"),
            Call("sin_approx"),
            Call("sin_approx"),
            Loop(64, [
                Compute(66, "butterfly: complex MAC"),
                If([Compute(14, "normalisation branch")]),
            ]),
        ]),
        Compute(6, "spectrum output"),
    ])
    return Program([main, sin_approx], name="fft")
