"""janne_complex — nested while loops with interdependent counters.

Designed to stress flow analysis: the inner loop's trip count depends
on the outer counter.  Structurally it is a two-level nest with a
branchy inner body; we use the worst-case bounds the original's
annotations declare.
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(5, "a, b init"),
        Loop(30, [
            Compute(4, "outer update"),
            Loop(30, [
                Compute(5, "inner arithmetic"),
                If([Compute(4, "a-branch")], [Compute(5, "b-branch")]),
            ]),
        ]),
        Compute(3),
    ])
    return Program([main], name="janne_complex")
