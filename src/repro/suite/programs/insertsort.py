"""insertsort — insertion sort of a 10-element array.

The classic shift-while-greater nest: outer loop over elements, inner
loop shifting the sorted prefix, with the guarded move in the middle.
A compact kernel with pure MRU-position temporal locality.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program
from repro.suite.shapes import guarded_swap


def build() -> Program:
    main = Function("main", [
        Loop(10, [Compute(3, "array init")]),
        Loop(9, [
            Compute(4, "pick key"),
            Loop(9, [Compute(4, "compare with prefix"), guarded_swap(6)]),
            Compute(3, "place key"),
        ]),
    ])
    return Program([main], name="insertsort")
