"""fibcall — iterative Fibonacci (30 terms).

The smallest benchmark of the suite: a single accumulation loop whose
body fits in two cache lines.  All locality is temporal in the MRU
position, fully preserved by the RW mechanism.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(4, "seed F0, F1"),
        Loop(30, [Compute(7, "next term, shift window")]),
        Compute(3, "return F(n)"),
    ])
    return Program([main], name="fibcall")
