"""cover — loops over huge switch statements (coverage stress test).

Three loops each sweeping a dense switch (60/30/20 cases in the C
original); -O0 lowers the switches to long compare-and-branch chains,
so the text footprint far exceeds the 1 KB cache and the only reuse
the cache can capture is spatial (within a line).  Both reliability
mechanisms preserve spatial locality completely — the category-1
poster child where pWCET(RW) = pWCET(SRB) = fault-free WCET.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program
from repro.suite.shapes import if_chain


def build() -> Program:
    main = Function("main", [
        Compute(6, "volatile counter setup"),
        Loop(60, [Compute(2, "swi60 dispatch"), *if_chain(30, 8)]),
        Loop(30, [Compute(2, "swi30 dispatch"), *if_chain(15, 8)]),
        Loop(20, [Compute(2, "swi20 dispatch"), *if_chain(10, 8)]),
        Compute(4, "result"),
    ])
    return Program([main], name="cover")
