"""prime — primality test by trial division.

An even/odd pre-check and a divisor loop with an early-exit branch,
calling a tiny ``divides`` helper per candidate — a small kernel with
a call inside the hot loop.
"""

from __future__ import annotations

from repro.minic import Call, Compute, Function, If, Loop, Program


def build() -> Program:
    divides = Function("divides", [Compute(6, "modulo test")])
    main = Function("main", [
        Compute(4, "candidate setup"),
        If([Compute(3, "even: answer directly")]),
        Loop(73, [
            Compute(3, "next odd divisor"),
            Call("divides"),
            If([Compute(3, "composite: set flag")]),
        ]),
        Compute(3, "verdict"),
    ])
    return Program([main, divides], name="prime")
