"""ud — LU decomposition (no pivoting variant) of a 5x5 system.

The benchmark with the smallest SRB gain in the paper (25%): its
elimination kernel's working set per cache set exceeds one line, so a
large share of the temporal locality sits outside the MRU position
and cannot be preserved by either mechanism's hardened line.  The
stand-in gives the inner kernels wide straight-line bodies to
reproduce that deep-temporal profile.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(6, "matrix setup"),
        Loop(5, [
            Compute(24, "pivot row normalisation"),
            Loop(5, [
                Compute(84, "elimination row update (unrolled)"),
                Loop(5, [Compute(30, "inner MAC")]),
            ]),
        ]),
        Loop(5, [
            Compute(20, "forward substitution"),
            Loop(5, [Compute(22, "dot term")]),
        ]),
        Loop(5, [
            Compute(20, "backward substitution"),
            Loop(5, [Compute(22, "dot term")]),
        ]),
        Compute(4),
    ])
    return Program([main], name="ud")
