"""ns — search in a 4-dimensional 5x5x5x5 array.

A four-deep loop nest probing every cell with a success branch in the
innermost body — a deeply nested kernel with a tiny footprint and huge
iteration product.
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program
from repro.suite.shapes import nested_loops


def build() -> Program:
    main = Function("main", [
        Compute(4, "target setup"),
        nested_loops([5, 5, 5, 5],
                     [Compute(44, "load cell (4-D indexing)"),
                      If([Compute(10, "record match")])],
                     per_level_units=2),
        Compute(3, "result"),
    ])
    return Program([main], name="ns")
