"""ludcmp — LU decomposition and solve of a 5x5 linear system.

Triangular factorisation nests (elimination with an inner dot-product
loop), then forward/backward substitution loops.  Several loop levels
of moderate body size with division-heavy straight-line code.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(8, "matrix setup"),
        Loop(5, [
            Compute(5, "pivot row"),
            Loop(5, [
                Compute(40, "eliminate row head / divide"),
                Loop(5, [Compute(36, "row update MAC")]),
            ]),
        ]),
        Loop(5, [
            Compute(4, "forward substitution row"),
            Loop(5, [Compute(28, "dot product term")]),
        ]),
        Loop(5, [
            Compute(5, "backward substitution row"),
            Loop(5, [Compute(28, "dot product term")]),
        ]),
        Compute(4, "residual check"),
    ])
    return Program([main], name="ludcmp")
