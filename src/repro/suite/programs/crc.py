"""crc — cyclic redundancy check over a 40-byte message.

A table-generation loop (256 iterations calling the bitwise CRC
helper) followed by the per-byte CRC loop with parity branches.
Two hot kernels of moderate size executed back to back, plus a
call into a helper from inside the hottest loop.
"""

from __future__ import annotations

from repro.minic import Call, Compute, Function, If, Loop, Program


def build() -> Program:
    icrc1 = Function("icrc1", [
        Loop(8, [
            Compute(4, "shift"),
            If([Compute(22, "xor polynomial")], [Compute(14, "plain shift")]),
        ]),
        Compute(3),
    ])
    main = Function("main", [
        Compute(8, "message setup"),
        Loop(256, [Compute(24, "table entry"), Call("icrc1"), Compute(2)]),
        Loop(40, [
            Compute(6, "fetch byte, index tables"),
            If([Compute(5, "high-bit path")], [Compute(4, "low-bit path")]),
        ]),
        Compute(5, "final xor / swap"),
    ])
    return Program([main, icrc1], name="crc")
