"""cnt — counts and sums positive/negative cells of a 10x10 matrix.

Two passes over the matrix: an initialisation nest and a counting nest
whose body takes a data-dependent branch per cell.  Both kernels are
compact loops; the branchy counting body spreads over a few more lines
than the init loop.
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program


def build() -> Program:
    main = Function("main", [
        Loop(10, [Compute(2), Loop(10, [Compute(5, "seed cell")])]),
        Loop(10, [
            Compute(3, "row setup"),
            Loop(10, [
                Compute(34, "load cell (2-D indexing)"),
                If([Compute(26, "positive: add to postotal")],
                   [Compute(26, "negative: add to negtotal")]),
            ]),
        ]),
        Compute(6, "final totals"),
    ])
    return Program([main], name="cnt")
