"""bsort100 — bubble sort of a 100-element array.

A 100 x 99 nested loop whose inner body is a compare-and-maybe-swap.
The kernel is small (a few lines) but extremely hot: fault-induced
misses in its sets get multiplied by ~10^4 executions, which is what
makes the unprotected pWCET explode.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program
from repro.suite.shapes import guarded_swap


def build() -> Program:
    main = Function("main", [
        Loop(100, [Compute(4, "array init")]),
        Loop(100, [
            Compute(10, "outer index"),
            Loop(99, [
                Compute(42, "load neighbours, compare (O0 addressing)"),
                guarded_swap(30),
            ]),
        ]),
        Compute(4, "sorted flag"),
    ])
    return Program([main], name="bsort100")
