"""fir — finite impulse response filter over a sample buffer.

The canonical two-level DSP nest: an outer loop over output samples,
an inner multiply-accumulate loop over the filter taps, with a gain
correction step per sample.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(6, "coefficient setup"),
        Loop(64, [
            Compute(5, "output index, clear accumulator"),
            Loop(16, [Compute(28, "tap MAC")]),
            Compute(5, "scale and store sample"),
        ]),
        Compute(3),
    ])
    return Program([main], name="fir")
