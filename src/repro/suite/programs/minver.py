"""minver — inversion of a 3x3 matrix by Gauss-Jordan elimination.

Many small fixed-bound nests (pivot search with branches, row scaling,
elimination, final multiply to verify) over a 3x3 system — lots of
short loops with decision code between them.
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(8, "matrix load"),
        Loop(3, [
            Compute(5, "pivot column"),
            Loop(3, [Compute(4, "pivot magnitude"),
                     If([Compute(5, "swap rows")])]),
            Compute(9, "scale pivot row / divide"),
            Loop(3, [
                Compute(4, "elimination row head"),
                If([Loop(3, [Compute(6, "row update")])]),
            ]),
        ]),
        Loop(3, [Loop(3, [Loop(3, [Compute(7, "verify multiply MAC")])])]),
        Compute(6, "determinant / residual"),
    ])
    return Program([main], name="minver")
