"""qurt — roots of a quadratic equation (Newton square root inside).

Computes the discriminant, then calls an iterative square-root helper
(19 Newton steps) once per root path, with sign branches around it.
Call-dominated control flow around a compact iterative kernel.
"""

from __future__ import annotations

from repro.minic import Call, Compute, Function, If, Loop, Program


def build() -> Program:
    qurt_sqrt = Function("qurt_sqrt", [
        Compute(5, "initial guess"),
        Loop(19, [Compute(42, "Newton iteration")]),
        Compute(3, "round"),
    ])
    main = Function("main", [
        Compute(10, "coefficients, discriminant"),
        If([Compute(4, "real roots"), Call("qurt_sqrt"),
            Compute(8, "both roots")],
           [Compute(4, "complex roots"), Call("qurt_sqrt"),
            Compute(8, "real/imaginary parts")]),
        Compute(4, "store roots"),
    ])
    return Program([main, qurt_sqrt], name="qurt")
