"""bs — binary search over a 15-entry array.

A tiny kernel: one bounded loop (log2(15) ~ 4 probes) with a three-way
comparison inside.  The whole loop spans a handful of cache lines in
distinct sets, so a single working way per set suffices to keep all of
its temporal locality: the classic category-2 shape (RW restores the
fault-free WCET, the SRB cannot hold the multi-line working set).
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(8, "bounds setup"),
        Loop(4, [
            Compute(6, "midpoint probe"),
            If([Compute(4, "found: record and stop flag")],
               [If([Compute(3, "go left")], [Compute(3, "go right")])]),
        ]),
        Compute(4, "result"),
    ])
    return Program([main], name="bs")
