"""fdct — fast discrete cosine transform of an 8x8 block.

Two passes of 8 iterations each (rows then columns); every iteration
executes a long straight-line butterfly body (~25 cache lines).  The
working set per cache set is between one and two lines: some of the
temporal reuse sits in the MRU position and is protected, some does
not — the mixed behaviour of Figure 4's category 3/4 boundary.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(6, "block setup"),
        Loop(8, [Compute(92, "row butterfly pass")]),
        Loop(8, [Compute(92, "column butterfly pass")]),
        Compute(4, "store coefficients"),
    ])
    return Program([main], name="fdct")
