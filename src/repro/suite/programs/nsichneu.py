"""nsichneu — simulation of an extended Petri net.

The flow-analysis monster of the suite: two iterations over more than
a hundred guarded transition blocks (each an if with a straight-line
update).  ~9 KB of nearly straight-line code against a 1 KB cache:
only spatial locality survives, which both mechanisms preserve in
full — the deepest category-1 benchmark.
"""

from __future__ import annotations

from repro.minic import Function, Loop, Program
from repro.suite.shapes import if_chain


def build() -> Program:
    main = Function("main", [
        Loop(2, if_chain(120, 14, guard_units=2)),
    ])
    return Program([main], name="nsichneu")
