"""One module per benchmark; each exposes ``build() -> Program``."""
