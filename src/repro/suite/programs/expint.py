"""expint — exponential integral function by series expansion.

One main loop of 100 terms whose body conditionally runs a short
inner continued-fraction loop on the first iteration class and a
series accumulation otherwise — a loop with unbalanced branch arms.
"""

from __future__ import annotations

from repro.minic import Compute, Function, If, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(10, "argument setup"),
        Loop(100, [
            Compute(5, "term index arithmetic"),
            If([Loop(10, [Compute(24, "continued fraction step")]),
                Compute(4)],
               [Compute(82, "series term accumulate")]),
        ]),
        Compute(6, "scale result"),
    ])
    return Program([main], name="expint")
