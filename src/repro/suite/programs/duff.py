"""duff — Duff's device: an 8-way unrolled copy loop.

The unrolled switch-entry idiom produces one long straight-line body
re-executed a handful of times, plus a small tail loop.  The body
spans ~2 cache lines per set, so part of its reuse lives outside the
MRU position — partially protectable temporal locality.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(6, "copy setup"),
        # 8-way unrolled copy body (~12 instructions per element copy).
        Loop(6, [Compute(96, "unrolled copy of 8 elements")]),
        # Remainder elements.
        Loop(3, [Compute(10, "tail copy")]),
        Compute(4, "checksum"),
    ])
    return Program([main], name="duff")
