"""jfdctint — JPEG integer forward DCT (8x8 block).

Like fdct but with the JPEG slow-but-accurate integer butterflies:
two 8-iteration passes with long straight-line bodies plus a final
quantisation sweep over all 64 coefficients.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(5, "block setup"),
        Loop(8, [Compute(104, "row pass: integer butterflies")]),
        Loop(8, [Compute(104, "column pass: integer butterflies")]),
        Loop(64, [Compute(5, "descale and store")]),
    ])
    return Program([main], name="jfdctint")
