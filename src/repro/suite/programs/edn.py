"""edn — vector/DSP kernel collection (vec_mpy, MAC, FIR, latsynth...).

A sequence of independent signal-processing loops over 16-bit vectors.
Each kernel is compact, but together they cover a couple of KB, so
the kernels evict one another between phases: per-loop persistence
with global capacity pressure.
"""

from __future__ import annotations

from repro.minic import Compute, Function, Loop, Program


def build() -> Program:
    main = Function("main", [
        Compute(8, "buffers setup"),
        Loop(150, [Compute(88, "vec_mpy1 scaled multiply")]),
        Loop(150, [Compute(108, "mac: dual multiply-accumulate")]),
        Loop(36, [
            Compute(4, "fir output index"),
            Loop(32, [Compute(30, "fir tap MAC")]),
        ]),
        Loop(8, [Compute(48, "latsynth lattice stage")]),
        Loop(64, [Compute(98, "iir1 biquad")]),
        Loop(8, [
            Compute(3),
            Loop(8, [Compute(18, "codebook search distance")]),
        ]),
        Loop(16, [Compute(22, "jpeg dct helper")]),
        Compute(6, "results"),
    ])
    return Program([main], name="edn")
