"""The 25-benchmark evaluation suite (Mälardalen stand-ins).

The paper evaluates 25 programs of the Mälardalen WCET benchmark suite
compiled to MIPS.  The original C sources cannot be compiled offline,
so each entry here is a MiniC program *mimicking the documented control
structure and code footprint of its namesake* — loop-nest shapes,
bounds, call structure and straight-line body sizes are modelled on
the originals.  The WCET analyses consume only addresses, structure
and bounds, so these stand-ins exercise the same code paths (see
DESIGN.md §4 for the substitution argument).

Public interface:

* :data:`EVALUATED_BENCHMARKS` — the 25 names of Figure 4;
* :func:`build` — the MiniC AST of one benchmark;
* :func:`load` — compiled (linked + inlined) program, memoised.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.minic import CompiledProgram, Program, compile_program

#: Benchmarks of the paper's Figure 4, in the suite's canonical order.
EVALUATED_BENCHMARKS: tuple[str, ...] = (
    "adpcm", "bs", "bsort100", "cnt", "cover", "crc", "duff", "edn",
    "expint", "fdct", "fft", "fibcall", "fir", "insertsort",
    "janne_complex", "jfdctint", "lcdnum", "ludcmp", "matmult", "minver",
    "ns", "nsichneu", "prime", "qurt", "ud",
)


@dataclass(frozen=True)
class BenchmarkInfo:
    """Metadata of one suite entry."""

    name: str
    description: str
    code_bytes: int
    instruction_count: int


_PROGRAM_CACHE: dict[str, Program] = {}
_COMPILED_CACHE: dict[str, CompiledProgram] = {}


def build(name: str) -> Program:
    """The MiniC AST of benchmark ``name`` (memoised)."""
    if name not in EVALUATED_BENCHMARKS:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; see EVALUATED_BENCHMARKS")
    if name not in _PROGRAM_CACHE:
        module = importlib.import_module(f"repro.suite.programs.{name}")
        _PROGRAM_CACHE[name] = module.build()
    return _PROGRAM_CACHE[name]


def load(name: str) -> CompiledProgram:
    """Compiled and linked benchmark ``name`` (memoised)."""
    if name not in _COMPILED_CACHE:
        _COMPILED_CACHE[name] = compile_program(build(name))
    return _COMPILED_CACHE[name]


def info(name: str) -> BenchmarkInfo:
    """Size metadata of one benchmark."""
    compiled = load(name)
    module = importlib.import_module(f"repro.suite.programs.{name}")
    description = (module.__doc__ or "").strip().splitlines()[0]
    return BenchmarkInfo(name=name, description=description,
                         code_bytes=compiled.code_size_bytes(),
                         instruction_count=compiled.cfg.instruction_count())


def load_all() -> dict[str, CompiledProgram]:
    """Compile the whole suite (memoised)."""
    return {name: load(name) for name in EVALUATED_BENCHMARKS}
