"""Instructions of the MIPS-like target ISA.

Timing analysis of instruction caches treats an instruction as a fetch
from its address; the opcode only matters for building the control-flow
graph (branches, jumps, calls, returns).  We nevertheless keep real
mnemonics so that generated code is readable in dumps and debugging
sessions, mirroring what a disassembler of the original MIPS binaries
would show.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Fixed encoding width of the MIPS R2000/R3000 family, in bytes.
INSTRUCTION_SIZE = 4


class InstructionKind(enum.Enum):
    """Control-flow role of an instruction."""

    #: Arithmetic / logic / load / store — falls through to the next one.
    SEQUENTIAL = "sequential"
    #: Conditional branch (e.g. ``beq``) — two successors.
    BRANCH = "branch"
    #: Unconditional jump (``j``) — one non-fall-through successor.
    JUMP = "jump"
    #: Function call (``jal``) — transfers to a callee, then returns.
    CALL = "call"
    #: Function return (``jr ra``).
    RETURN = "return"


#: Mnemonics used by the gcc -O0 style code generator, grouped by kind.
MNEMONICS_BY_KIND = {
    InstructionKind.SEQUENTIAL: (
        "addu", "addiu", "subu", "and", "or", "xor", "nor", "sll", "srl",
        "slt", "slti", "lui", "lw", "sw", "lb", "sb", "mult", "mflo",
        "mfhi", "div", "nop", "move", "li",
    ),
    InstructionKind.BRANCH: ("beq", "bne", "blez", "bgtz", "bltz", "bgez"),
    InstructionKind.JUMP: ("j",),
    InstructionKind.CALL: ("jal",),
    InstructionKind.RETURN: ("jr",),
}

_KIND_BY_MNEMONIC = {
    mnemonic: kind
    for kind, mnemonics in MNEMONICS_BY_KIND.items()
    for mnemonic in mnemonics
}


def kind_of_mnemonic(mnemonic: str) -> InstructionKind:
    """Return the :class:`InstructionKind` of a known mnemonic."""
    try:
        return _KIND_BY_MNEMONIC[mnemonic]
    except KeyError as exc:
        raise ConfigurationError(f"unknown mnemonic {mnemonic!r}") from exc


@dataclass(frozen=True)
class Instruction:
    """One 4-byte instruction at a fixed address.

    Attributes
    ----------
    address:
        Byte address of the instruction in the text segment.  Must be
        aligned on :data:`INSTRUCTION_SIZE`.
    mnemonic:
        MIPS-style mnemonic (see :data:`MNEMONICS_BY_KIND`).
    operands:
        Free-form operand string, kept only for human-readable dumps.
    target:
        For control-transfer instructions, the symbolic target label
        (callee name for calls, block label for jumps/branches).
    """

    address: int
    mnemonic: str
    operands: str = ""
    target: str | None = None
    kind: InstructionKind = field(init=False)

    def __post_init__(self) -> None:
        if self.address < 0 or self.address % INSTRUCTION_SIZE:
            raise ConfigurationError(
                f"instruction address {self.address:#x} is not "
                f"{INSTRUCTION_SIZE}-byte aligned")
        object.__setattr__(self, "kind", kind_of_mnemonic(self.mnemonic))

    def with_address(self, address: int) -> "Instruction":
        """Return a copy of this instruction relocated to ``address``."""
        return Instruction(address=address, mnemonic=self.mnemonic,
                           operands=self.operands, target=self.target)

    @property
    def is_control_transfer(self) -> bool:
        """True for branches, jumps, calls and returns."""
        return self.kind is not InstructionKind.SEQUENTIAL

    def __str__(self) -> str:
        text = f"{self.address:#010x}: {self.mnemonic}"
        if self.operands:
            text += f" {self.operands}"
        if self.target is not None:
            text += f" <{self.target}>"
        return text
