"""Memory layout of compiled functions (the "default linker" model).

The paper compiles the Mälardalen benchmarks with gcc 4.1 and *the
default linker memory layout*: functions are placed contiguously in the
text segment, in definition order, starting at the text base address.
Cache behaviour is extremely sensitive to this placement (it decides
which sets each loop touches), so we model it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.instruction import INSTRUCTION_SIZE

#: Conventional MIPS text segment base used by the default linker script.
DEFAULT_TEXT_BASE = 0x0040_0000


@dataclass(frozen=True)
class FunctionImage:
    """Placement of one function in the text segment."""

    name: str
    base_address: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.base_address % INSTRUCTION_SIZE:
            raise ConfigurationError(
                f"function {self.name!r} base {self.base_address:#x} "
                "is misaligned")
        if self.size_bytes <= 0 or self.size_bytes % INSTRUCTION_SIZE:
            raise ConfigurationError(
                f"function {self.name!r} has invalid size {self.size_bytes}")

    @property
    def end_address(self) -> int:
        """First address past the function."""
        return self.base_address + self.size_bytes


class MemoryLayout:
    """Assigns base addresses to functions, in definition order.

    Parameters
    ----------
    text_base:
        Address of the first function.
    alignment:
        Function start alignment in bytes (the default linker aligns
        function entry points; 4 keeps functions densely packed like
        gcc -O0 output, larger values model section alignment).
    """

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 alignment: int = INSTRUCTION_SIZE) -> None:
        if text_base < 0 or text_base % INSTRUCTION_SIZE:
            raise ConfigurationError(f"text base {text_base:#x} is misaligned")
        if alignment < INSTRUCTION_SIZE or alignment % INSTRUCTION_SIZE:
            raise ConfigurationError(f"invalid alignment {alignment}")
        self._text_base = text_base
        self._alignment = alignment
        self._images: dict[str, FunctionImage] = {}
        self._cursor = text_base

    @property
    def text_base(self) -> int:
        return self._text_base

    def place(self, name: str, size_bytes: int) -> FunctionImage:
        """Place a function of ``size_bytes`` and return its image."""
        if name in self._images:
            raise ConfigurationError(f"function {name!r} placed twice")
        start = -(-self._cursor // self._alignment) * self._alignment
        image = FunctionImage(name=name, base_address=start,
                              size_bytes=size_bytes)
        self._images[name] = image
        self._cursor = image.end_address
        return image

    def image_of(self, name: str) -> FunctionImage:
        """Return the image of a previously placed function."""
        try:
            return self._images[name]
        except KeyError as exc:
            raise ConfigurationError(f"function {name!r} not placed") from exc

    @property
    def images(self) -> tuple[FunctionImage, ...]:
        """All placed functions, in placement order."""
        return tuple(self._images.values())

    @property
    def total_code_bytes(self) -> int:
        """Footprint of the whole text segment, padding included."""
        return self._cursor - self._text_base
