"""MIPS-like instruction-set model.

The WCET analyses in this library only need instruction *addresses*
(to derive cache references), instruction *kinds* (to recognise control
flow) and a fixed encoding width.  This package models exactly that: a
RISC ISA in the style of the MIPS R2000/R3000 targeted by the paper,
with 4-byte instructions and a conventional mnemonic set.
"""

from repro.isa.instruction import (
    INSTRUCTION_SIZE,
    Instruction,
    InstructionKind,
)
from repro.isa.layout import FunctionImage, MemoryLayout

__all__ = [
    "INSTRUCTION_SIZE",
    "Instruction",
    "InstructionKind",
    "FunctionImage",
    "MemoryLayout",
]
