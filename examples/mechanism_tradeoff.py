"""Figure 4 reproduction: the RW/SRB trade-off over the whole suite.

Runs the 25-benchmark suite through the pipeline and prints the
normalised pWCETs, the four behaviour categories and the average/min
gains the paper quotes (SRB 40% avg / 25% min, RW 48% avg / 26% min).

This is the heaviest example (~10 s: 25 benchmarks x 3 mechanisms,
each involving dozens of integer linear programs).

Run with:  python examples/mechanism_tradeoff.py
"""

from repro.experiments import fig4_rows, format_fig4


def main() -> None:
    rows = fig4_rows()
    print(format_fig4(rows))

    print("\nreading a stacked bar (matmult, like the paper's example):")
    row = next(r for r in rows if r.name == "matmult")
    print(f"  no protection : 1.000 (reference)")
    print(f"  SRB benefit   : {1 - row.normalized_srb:.3f} "
          "(top stack segment)")
    print(f"  extra RW gain : {row.normalized_srb - row.normalized_rw:.3f} "
          "(middle segment)")
    print(f"  fault-free    : {row.normalized_fault_free:.3f} (bottom)")


if __name__ == "__main__":
    main()
