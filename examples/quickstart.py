"""Quickstart: estimate the pWCET of a small program.

Builds a MiniC program, compiles it with the bundled gcc--O0-style
toolchain, and runs the paper's full pipeline for the three hardware
configurations (no protection, SRB, RW) on the paper's cache setup
(1 KB, 4-way, 16 B lines, pfail = 1e-4).

Run with:  python examples/quickstart.py
"""

from repro import (Compute, EstimatorConfig, Function, If, Loop, Program,
                   PWCETEstimator, compile_program)


def main() -> None:
    # A toy task: setup, a hot loop with a data-dependent branch, and a
    # cool-down phase.  Loop(100, ...) bounds the loop at 100 iterations
    # (the MiniC equivalent of a WCET flow-fact annotation).
    program = Program([
        Function("main", [
            Compute(12, "initialise buffers"),
            Loop(100, [
                Compute(18, "filter stage"),
                If([Compute(10, "saturate")], [Compute(6, "pass-through")]),
            ]),
            Compute(8, "write results"),
        ]),
    ], name="quickstart")

    compiled = compile_program(program)
    print(f"compiled: {compiled.cfg} / {compiled.code_size_bytes()} bytes")

    estimator = PWCETEstimator(compiled, EstimatorConfig())
    print(f"fault-free WCET: {estimator.fault_free_wcet()} cycles")
    print(f"{'mechanism':>10s} {'pWCET@1e-15':>12s} {'vs fault-free':>14s}")
    for mechanism in ("none", "srb", "rw"):
        estimate = estimator.estimate(mechanism)
        pwcet = estimate.pwcet()  # paper target: 1e-15 per activation
        ratio = pwcet / estimator.fault_free_wcet()
        print(f"{mechanism:>10s} {pwcet:12d} {ratio:13.2f}x")

    # The exceedance curve behind the headline number:
    curve = estimator.estimate("none").exceedance_curve()
    print("\nexceedance curve (no protection), selected points:")
    for probability in (1e-3, 1e-6, 1e-9, 1e-12, 1e-15):
        print(f"  P(WCET > {curve.pwcet(probability):7d}) "
              f"<= {probability:.0e}")


if __name__ == "__main__":
    main()
