"""The pWCET/cost trade-off and the refined SRB (library extensions).

The paper motivates RW vs SRB as a cost/benefit choice and leaves two
things as future work: the die-area/power analysis, and a more precise
SRB analysis.  This example shows both extensions:

1. gain per benchmark against hardened-cell area overhead (the
   designer's view);
2. the refined SRB analysis ('srb+'), sound above its probability
   floor, recovering most of the RW's benefit at SRB cost.

Run with:  python examples/reliability_cost_tradeoff.py
"""

from repro.hwcost.tradeoff import format_tradeoff, tradeoff_points
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.reliability.refined_srb import excluded_probability
from repro.suite import load

BENCHMARKS = ("fibcall", "bsort100", "ud", "adpcm")


def main() -> None:
    print("pWCET gain vs hardware cost at 1e-15 "
          "(schmitt-trigger hardened cells):\n")
    print(format_tradeoff(tradeoff_points(BENCHMARKS)))

    probability = 1e-9
    config = EstimatorConfig()
    print(f"\nrefined SRB analysis at exceedance {probability:.0e} "
          "(same hardware as the SRB):\n")
    print(f"{'benchmark':12s} {'srb':>9s} {'srb+':>9s} {'rw':>9s}")
    for name in BENCHMARKS:
        estimator = PWCETEstimator(load(name), config, name=name)
        srb = estimator.estimate("srb").pwcet(probability)
        refined = estimator.estimate("srb+").pwcet(probability)
        rw = estimator.estimate("rw").pwcet(probability)
        print(f"{name:12s} {srb:9d} {refined:9d} {rw:9d}")
    floor = excluded_probability(config.fault_model(), 16)
    print(f"\nrefinement floor P(>=2 sets entirely faulty) = {floor:.2e}:"
          f"\nthe refined analysis cannot certify the 1e-15 aerospace"
          f"\ntarget at pfail=1e-4 — the trade-off the paper's future"
          f"\nwork would have to negotiate.")


if __name__ == "__main__":
    main()
