"""Validating the static bounds by Monte-Carlo fault injection.

For one benchmark, samples thousands of (chip, path) pairs and checks
that the deterministic bound  WCET_ff + 100 * sum_s FMM[s][f_s]  is
never exceeded by the simulated execution time — for all three
mechanisms — then reports how tight the bound was.

Run with:  python examples/fault_injection_validation.py [benchmark]
"""

import random
import sys

from repro import EstimatorConfig, FaultMap, PWCETEstimator, TimingModel
from repro.cfg import PathWalker
from repro.reliability import MECHANISMS, ReliableWay
from repro.sim import TraceExecutor
from repro.suite import load


def main(benchmark: str = "crc", chips: int = 300) -> None:
    compiled = load(benchmark)
    config = EstimatorConfig(pfail=5e-4)  # elevated rate: more faults
    estimator = PWCETEstimator(compiled, config, name=benchmark)
    timing: TimingModel = config.timing
    geometry = config.geometry
    model = config.fault_model()
    walker = PathWalker(compiled.cfg, estimator.analysis.forest)
    wcet_ff = estimator.fault_free_wcet()
    print(f"benchmark {benchmark}: fault-free WCET {wcet_ff} cycles, "
          f"pbf = {model.pbf:.4f}")

    rng = random.Random(2016)
    for mechanism in MECHANISMS:
        fmm = estimator.fault_miss_map(mechanism)
        reliable = 1 if isinstance(mechanism, ReliableWay) else 0
        worst_ratio, violations = 0.0, 0
        for trial in range(chips):
            fault_map = FaultMap.sample(geometry, model.pbf, rng,
                                        reliable_ways=reliable)
            walk = walker.walk(rng, maximize_iterations=(trial % 2 == 0))
            outcome = TraceExecutor(geometry, timing, mechanism,
                                    fault_map).run(walk.addresses)
            penalty = sum(
                fmm.misses(s, min(fault_map.faulty_ways_in_set(s),
                                  fmm.max_fault_count))
                for s in range(geometry.sets))
            bound = wcet_ff + timing.memory_cycles * penalty
            if outcome.cycles > bound:
                violations += 1
            worst_ratio = max(worst_ratio, outcome.cycles / bound)
        status = "OK" if violations == 0 else f"{violations} VIOLATIONS"
        print(f"  {mechanism.name:>5s}: {chips} chips, bound {status}; "
              f"tightest observed ratio sim/bound = {worst_ratio:.3f}")


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["crc"]))
