"""Figure 3 reproduction: exceedance curves for adpcm.

Prints the complementary cumulative distribution of the pWCET of the
``adpcm`` benchmark for the three protection levels, like the paper's
Figure 3, plus an ASCII rendering of the curves.

Run with:  python examples/adpcm_exceedance.py
"""

import math

from repro.experiments.fig3 import exceedance_curves, format_fig3


def ascii_plot(curves, width: int = 68, height: int = 16) -> str:
    """Log-probability vs pWCET, one character per curve point."""
    symbols = {"none": "n", "srb": "s", "rw": "r"}
    low = min(curve.values[0] for curve in curves.values())
    high = max(curve.values[-1] for curve in curves.values())
    span = max(high - low, 1)
    grid = [[" "] * width for _ in range(height)]
    for name, curve in curves.items():
        for value, probability in curve.rows():
            if probability <= 0:
                continue
            x = min(int((value - low) / span * (width - 1)), width - 1)
            log_p = max(-15.0, math.log10(probability))
            y = min(int(-log_p / 15.0 * (height - 1)), height - 1)
            grid[y][x] = symbols[name]
    lines = [f"1e-{row:02d} |" + "".join(grid[row]) for row in range(height)]
    lines.append("      +" + "-" * width)
    lines.append(f"       {low} .. {high} cycles   "
                 "(n=no protection, s=SRB, r=RW)")
    return "\n".join(lines)


def main() -> None:
    print(format_fig3())
    print()
    print(ascii_plot(exceedance_curves()))


if __name__ == "__main__":
    main()
