"""SPTA (this paper) vs measurement-based EVT estimation (MBPTA).

The paper's related work (Slijepcevic et al. [7]) estimates fault-aware
pWCETs by measuring a degraded test mode and extrapolating with
extreme value theory.  This example runs both estimators on the same
benchmarks and contrasts the results: the static method covers the
worst path by construction, while the EVT fit extrapolates from the
sampled behaviour.

Run with:  python examples/mbpta_comparison.py
"""

from repro import EstimatorConfig, PWCETEstimator
from repro.mbpta import MBPTAEstimator
from repro.suite import load

BENCHMARKS = ("bs", "fibcall", "crc")
TARGET = 1e-9  # a reachable EVT extrapolation target


def main() -> None:
    config = EstimatorConfig()
    print(f"{'benchmark':>10s} {'mech':>5s} {'SPTA pWCET':>11s} "
          f"{'MBPTA pWCET':>12s} {'max sample':>11s} {'xi':>7s}")
    for name in BENCHMARKS:
        compiled = load(name)
        static = PWCETEstimator(compiled, config, name=name)
        measured = MBPTAEstimator(compiled.cfg, config, name=name)
        for mechanism in ("none", "rw"):
            spta = static.estimate(mechanism).pwcet(TARGET)
            mbpta = measured.estimate(mechanism, TARGET, n_samples=500,
                                      seed=42)
            print(f"{name:>10s} {mechanism:>5s} {spta:11d} "
                  f"{mbpta.pwcet:12.0f} {mbpta.samples_max:11.0f} "
                  f"{mbpta.tail_shape:+7.2f}")
    print("\nNote: MBPTA extrapolates from sampled paths and chips; it can"
          "\nsit below the static bound (no worst-path guarantee) — the"
          "\ncomparison the paper makes against measurement-based methods.")


if __name__ == "__main__":
    main()
