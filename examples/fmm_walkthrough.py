"""Figure 1 walkthrough: the fault miss map and penalty convolution.

Reproduces the paper's didactic Figure 1 on a real small program and a
4-set / 2-way cache: prints the FMM (one row per set, one column per
fault count), the three-point penalty distribution of every set, and
the convolved whole-cache penalty distribution.

Run with:  python examples/fmm_walkthrough.py
"""

from repro.experiments.fig1 import compute_fig1, format_fig1


def main() -> None:
    data = compute_fig1()
    print(format_fig1(data))
    print()
    print("step-by-step convolution (like Figure 1.b):")
    from repro.pwcet import DiscreteDistribution
    running = None
    for set_index, distribution in enumerate(data.per_set):
        running = (distribution if running is None
                   else running.convolve(distribution))
        support = [int(v) for v in range(running.support_max + 1)
                   if running.pmf[v] > 0]
        print(f"  after set {set_index}: {len(support)} support points, "
              f"max penalty {max(support)} misses")


if __name__ == "__main__":
    main()
