"""Shared fixtures and reporting helpers for the benchmark harness.

Every harness module both *benchmarks* a representative unit of work
(via pytest-benchmark) and *prints* the paper artefact it regenerates
(the rows/series of the corresponding table or figure).  The printed
artefacts are also written to ``benchmarks/results/`` so they survive
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Print a paper artefact and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def suite_rows():
    """Figure 4 data for the whole 25-benchmark suite (computed once)."""
    from repro.experiments import fig4_rows
    return fig4_rows()
