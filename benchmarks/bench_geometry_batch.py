"""BENCH-GEOMETRY-BATCH — the stacked classification kernel.

Measures the tentpole property of the geometry-batched engine: a cold
sweep over the **full default 16-geometry grid** runs ONE stacked
Must/May fixpoint pair per (benchmark, line size) — ≥ 8× fewer
fixpoints than the per-geometry ``vector`` oracle (16 geometries fall
into 2 line-size groups) — while the sweep report stays byte-identical
and the cold classify stage finishes ≥ 2× faster in wall clock.
Exports the machine-readable ``BENCH_geometry_batch.json`` under
``benchmarks/results/``.

The harness owns private store directories under
``benchmarks/.solvecache/`` (gitignored) and wipes them before each
cold pass — the controlled cold start is the point of the measurement.
"""

import json
import os
import pathlib
import shutil
import time

from repro.analysis import CacheAnalysis
from repro.analysis.classify import ENGINE_ENV
from repro.analysis.geometry_batch import grouped_analysis
from repro.pipeline.stages import SUITE_MECHANISMS, required_classifications
from repro.pwcet import EstimatorConfig
from repro.suite import load
from repro.sweep import format_sweep_report, geometry_grid, run_sweep
from repro.sweep.service import _geometry_groups

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_ROOT = pathlib.Path(__file__).parent / ".solvecache" / "bench_geometry"

#: One benchmark per Figure-4 behaviour category (the full 25-benchmark
#: axis is the CLI's job); the *geometry* axis is the full default grid
#: — that axis is what this harness measures.
SUBSET = ("nsichneu", "fibcall", "ud", "adpcm")


def _classify_everything(cfg, groups, engine):
    """One benchmark's whole cold classification work, grid-wide."""
    for group in groups:
        if engine == "batch":
            grouped_analysis(cfg, group, SUITE_MECHANISMS, cache="off")
            continue
        for geometry in group:
            analysis = CacheAnalysis(cfg, geometry, cache="off",
                                     engine=engine)
            assocs, needs_srb = required_classifications(
                SUITE_MECHANISMS, geometry.ways)
            for assoc in assocs:
                analysis.classification(assoc)
            if needs_srb:
                analysis.srb_always_hits()


def _classify_stage_seconds(cfgs, groups, engine):
    start = time.perf_counter()
    for cfg in cfgs:
        _classify_everything(cfg, groups, engine)
    return time.perf_counter() - start


def _cold_sweep(geometries, engine):
    cache = CACHE_ROOT / engine
    shutil.rmtree(cache, ignore_errors=True)
    previous = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = engine
    try:
        result = run_sweep(geometries, benchmarks=SUBSET,
                           config=EstimatorConfig(cache=str(cache)))
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous
    return result


def test_geometry_batched_classification(benchmark, emit):
    geometries = geometry_grid()
    groups = _geometry_groups(geometries)
    assert len(geometries) == 16 and len(groups) == 2

    # --- classify-stage wall clock, isolated from solver/convolution.
    # Pre-warm the per-(CFG, line size) block-stream memo so both
    # engines time the same post-memo work, then take the best of
    # three rounds each to damp scheduler noise.
    cfgs = [load(name).cfg for name in SUBSET]
    for engine in ("vector", "batch"):
        _classify_stage_seconds(cfgs, groups, engine)
    vector_seconds = min(_classify_stage_seconds(cfgs, groups, "vector")
                         for _ in range(3))
    benchmark.pedantic(_classify_stage_seconds,
                       args=(cfgs, groups, "batch"),
                       rounds=3, iterations=1)
    batch_seconds = min(benchmark.stats.stats.data)

    # --- full cold sweeps under both engines: fixpoint budget and
    # byte-identity of the report.
    batched = _cold_sweep(geometries, "batch")
    vector = _cold_sweep(geometries, "vector")
    batch_fixpoints = int(batched.solver_totals["fixpoints_run"])
    vector_fixpoints = int(vector.solver_totals["fixpoints_run"])
    assert format_sweep_report(batched) == format_sweep_report(vector)
    # <= 1 stacked pair (+ 1 shared SRB) per (benchmark, line size).
    assert batch_fixpoints <= len(SUBSET) * len(groups) * 3
    assert vector_fixpoints >= 8 * batch_fixpoints

    # Warm rerun of the batched store: still zero fixpoints and ILPs.
    previous = os.environ.get(ENGINE_ENV)
    os.environ.pop(ENGINE_ENV, None)
    try:
        rewarm = run_sweep(geometries, benchmarks=SUBSET,
                           config=EstimatorConfig(
                               cache=str(CACHE_ROOT / "batch")))
    finally:
        if previous is not None:
            os.environ[ENGINE_ENV] = previous
    assert rewarm.solver_totals["fixpoints_run"] == 0
    assert rewarm.solver_totals["ilp_solved"] == 0
    # Every reported number matches the cold run exactly (the summary
    # footer differs by design: the warm run reports its store reuse).
    assert rewarm.points == batched.points

    payload = {
        "benchmarks": list(SUBSET),
        "grid_geometries": len(geometries),
        "line_size_groups": len(groups),
        "classify_vector_seconds": vector_seconds,
        "classify_batch_seconds": batch_seconds,
        "classify_speedup": vector_seconds / batch_seconds,
        "cold_fixpoints_vector": vector_fixpoints,
        "cold_fixpoints_batch": batch_fixpoints,
        "fixpoint_reduction": vector_fixpoints / batch_fixpoints,
        "classify_batched_rows":
            int(batched.solver_totals["classify_batched_rows"]),
        "geometry_group_runs":
            int(batched.solver_totals["geometry_groups"]),
        "warm_fixpoints": int(rewarm.solver_totals["fixpoints_run"]),
        "warm_ilp_solved": int(rewarm.solver_totals["ilp_solved"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_geometry_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("geometry_batch_kernel", json.dumps(payload, indent=2))
    assert payload["fixpoint_reduction"] >= 8
    assert payload["classify_speedup"] >= 2
