"""ABL-CFG — cache-geometry sweep at fixed 1 KB capacity.

The paper inherits its 4-way / 16 B-line configuration from [1] as
"the one leading to the smallest pWCET".  This ablation re-runs the
pipeline across organisations of the same capacity and regenerates
the comparison that motivates that choice.
"""

import pytest

from repro.cache import CacheGeometry
from repro.experiments.ablations import format_sweep, geometry_sweep

GEOMETRIES = (
    CacheGeometry.from_size(1024, 1, 16),
    CacheGeometry.from_size(1024, 2, 16),
    CacheGeometry.from_size(1024, 4, 16),
    CacheGeometry.from_size(1024, 8, 16),
    CacheGeometry.from_size(1024, 4, 32),
)
SUBSET = ("fibcall", "ud", "adpcm")


@pytest.fixture(scope="module")
def sweep():
    return geometry_sweep(geometries=GEOMETRIES, benchmarks=SUBSET)


def test_geometry_sweep_compute(benchmark):
    result = benchmark.pedantic(
        lambda: geometry_sweep(
            geometries=(CacheGeometry.from_size(1024, 2, 16),),
            benchmarks=("fibcall",)),
        rounds=2, iterations=1)
    assert len(result) == 1


def test_geometry_sweep_table(benchmark, sweep, emit):
    text = benchmark.pedantic(lambda: format_sweep(sweep),
                              rounds=1, iterations=1)
    emit("ablation_geometry_sweep", text)
    for point in sweep:
        assert (point.wcet_fault_free <= point.pwcet_rw
                <= point.pwcet_srb <= point.pwcet_none)
    # A direct-mapped cache (1 way) cannot host an RW distinct from the
    # whole cache: its RW pWCET equals the fault-free WCET by
    # construction (the only way is the reliable one).
    direct_mapped = [p for p in sweep if str(p.value).endswith("x1x16B")]
    for point in direct_mapped:
        assert point.pwcet_rw == point.wcet_fault_free
