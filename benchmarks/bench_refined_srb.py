"""EXT-SRB+ — the refined SRB analysis (the paper's future work).

Quantifies what §VI's "more precise pWCET estimation technique for the
SRB" buys: pWCET at 1e-9 for SRB vs refined SRB (srb+) vs RW, and the
probability floor below which the refinement cannot certify
(P(two or more entirely faulty sets), ~8.1e-14 at the paper's
parameters — notably above the 1e-15 aerospace target).
"""

import pytest

from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.reliability.refined_srb import excluded_probability
from repro.suite import load

SUBSET = ("fibcall", "bs", "insertsort", "matmult", "ud", "adpcm")
PROBABILITY = 1e-9


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for name in SUBSET:
        estimator = PWCETEstimator(load(name), EstimatorConfig(),
                                   name=name)
        rows.append((
            name,
            estimator.fault_free_wcet(),
            estimator.estimate("srb").pwcet(PROBABILITY),
            estimator.estimate("srb+").pwcet(PROBABILITY),
            estimator.estimate("rw").pwcet(PROBABILITY),
            estimator.estimate("srb+").exceedance_correction,
        ))
    return rows


def test_refined_srb_pipeline(benchmark):
    """Time the refined pipeline (per-set SRB Must analyses + FMM)."""
    estimator = PWCETEstimator(load("ud"), EstimatorConfig(), name="ud")
    value = benchmark.pedantic(
        lambda: estimator.estimate("srb+").pwcet(PROBABILITY),
        rounds=2, iterations=1)
    assert value > 0


def test_refined_srb_table(benchmark, comparison, emit):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    lines = [f"pWCET at exceedance {PROBABILITY:.0e} "
             "(srb+ = refined SRB analysis, this library's extension)",
             f"{'benchmark':12s} {'wcet_ff':>9s} {'srb':>9s} "
             f"{'srb+':>9s} {'rw':>9s} {'floor':>9s}"]
    for name, ff, srb, refined, rw, correction in comparison:
        lines.append(f"{name:12s} {ff:9d} {srb:9d} {refined:9d} "
                     f"{rw:9d} {correction:9.1e}")
        # The refinement is sound and sandwiched: rw <= srb+ <= srb.
        assert rw <= refined <= srb
        # It cannot certify below its probability floor.
        assert correction > 1e-15
    emit("extension_refined_srb", "\n".join(lines))
    # On at least half the subset the refinement recovers the RW value
    # exactly (single-line-per-set loops).
    exact = sum(1 for _n, _f, _s, refined, rw, _c in comparison
                if refined == rw)
    assert exact >= len(comparison) // 2
