"""ABL-MBPTA — static (SPTA) vs measurement-based (MBPTA/EVT) pWCET.

The paper positions its static probabilistic method against the
measurement-based family ([7], Slijepcevic et al.): MBPTA samples a
degraded test mode and extrapolates with EVT, without a worst-path
guarantee.  This harness runs both on the same benchmarks and prints
the comparison; the benchmarked unit is the EVT sampling + fit.
"""

import pytest

from repro.mbpta import MBPTAEstimator
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.suite import load

BENCHMARKS = ("bs", "fibcall", "crc")
TARGET = 1e-9


@pytest.fixture(scope="module")
def comparison():
    config = EstimatorConfig()
    rows = []
    for name in BENCHMARKS:
        compiled = load(name)
        static = PWCETEstimator(compiled, config, name=name)
        measured = MBPTAEstimator(compiled.cfg, config, name=name)
        for mechanism in ("none", "rw"):
            spta = static.estimate(mechanism).pwcet(TARGET)
            mbpta = measured.estimate(mechanism, TARGET, n_samples=400,
                                      seed=42)
            rows.append((name, mechanism, spta, mbpta))
    return rows


def test_mbpta_sampling_and_fit(benchmark):
    """Time the MBPTA pipeline (400 chips/paths + GEV fit) for bs."""
    compiled = load("bs")
    estimator = MBPTAEstimator(compiled.cfg, EstimatorConfig(), name="bs")
    result = benchmark.pedantic(
        lambda: estimator.estimate("none", TARGET, n_samples=400, seed=1),
        rounds=2, iterations=1)
    assert result.n_samples == 400


def test_mbpta_vs_spta_table(benchmark, comparison, emit):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    lines = [f"{'benchmark':>10s} {'mech':>5s} {'SPTA':>10s} "
             f"{'MBPTA':>10s} {'max sample':>11s} {'xi':>7s}"]
    for name, mechanism, spta, mbpta in comparison:
        lines.append(f"{name:>10s} {mechanism:>5s} {spta:10d} "
                     f"{mbpta.pwcet:10.0f} {mbpta.samples_max:11.0f} "
                     f"{mbpta.tail_shape:+7.2f}")
    emit("ablation_mbpta_vs_spta", "\n".join(lines))
    for _name, _mechanism, spta, mbpta in comparison:
        # The EVT estimate is anchored to observations, so it can never
        # fall below the largest measured time...
        assert mbpta.pwcet >= mbpta.samples_max
        # ...and the static bound must dominate every observation (the
        # sampled executions are structurally feasible paths).
        assert spta >= mbpta.samples_max
