"""Aggregate ``benchmarks/results/BENCH_*.json`` into one summary.

Each harness module exports a machine-readable ``BENCH_<name>.json``
next to its printed artefact.  This collector folds them into a single
top-level ``BENCH_summary.json`` so the repo's perf trajectory is
machine-readable at a glance (CI uploads it as an artifact; trend
tooling diffs it across commits):

    python benchmarks/collect.py [--results DIR] [--output FILE]

The summary carries every per-harness payload verbatim under its
harness name, plus a ``headline`` section surfacing the cross-harness
numbers that gate acceptance criteria (warm-run zero-work properties,
kernel speedups, store reuse).  Harnesses that have not been run are
simply absent — the collector never fails on missing inputs, so it can
run after any subset of the harnesses.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_OUTPUT = RESULTS_DIR / "BENCH_summary.json"

#: (harness key, payload key) pairs promoted into the headline section
#: when present — the numbers the acceptance criteria and CI job
#: summaries quote.
HEADLINES = (
    ("sweep", "warm_speedup"),
    ("sweep", "warm_ilp_solved"),
    ("geometry_batch", "fixpoint_reduction"),
    ("geometry_batch", "classify_speedup"),
    ("geometry_batch", "warm_fixpoints"),
    ("distribution", "batched_vs_scalar_cell_speedup"),
    ("distribution", "axis_amortised_speedup_vs_scalar"),
    ("incremental", "warm_speedup"),
    ("incremental", "one_edit_speedup"),
    ("pipeline", "speedup_vs_barrier"),
    ("analysis", "vector_speedup"),
    ("analysis", "warm_fixpoints"),
    ("solver", "speedup"),
    ("solver", "dedup_hit_rate"),
)


def collect(results_dir: pathlib.Path) -> dict:
    """Read every BENCH_*.json (summary excluded) into one document."""
    harnesses: dict[str, object] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name == "summary":
            continue
        try:
            harnesses[name] = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            # A torn or corrupt export degrades to absence, mirroring
            # the stores' silent-repair discipline — but loudly.
            print(f"collect: skipping {path.name}: {error}",
                  file=sys.stderr)
    headline = {}
    for harness, key in HEADLINES:
        payload = harnesses.get(harness)
        if isinstance(payload, dict) and key in payload:
            headline[f"{harness}.{key}"] = payload[key]
    return {
        "harnesses_collected": sorted(harnesses),
        "headline": headline,
        "results": harnesses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=RESULTS_DIR,
                        help="directory holding BENCH_*.json exports")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help="summary file to write")
    args = parser.parse_args(argv)
    summary = collect(args.results)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"collected {len(summary['harnesses_collected'])} harness "
          f"exports -> {args.output}")
    for key, value in summary["headline"].items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
