"""FIG1 — the fault-miss-map walkthrough (paper Figure 1).

Regenerates the FMM table and the per-set penalty convolution of the
didactic example, benchmarking the FMM computation (one IPET-like ILP
per set and fault count).
"""

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.experiments.fig1 import compute_fig1, example_program, format_fig1
from repro.fmm import compute_fault_miss_map
from repro.reliability import NoProtection


def test_fig1_fmm_computation(benchmark):
    """Time the FMM ILP batch for the example program."""
    compiled = example_program()
    geometry = CacheGeometry(sets=4, ways=2, block_bytes=16)
    analysis = CacheAnalysis(compiled.cfg, geometry, cache="off")

    def compute():
        return compute_fault_miss_map(analysis, NoProtection())

    fmm = benchmark(compute)
    assert fmm.max_fault_count == 2


def test_fig1_walkthrough(benchmark, emit):
    """Regenerate both halves of Figure 1 and check their invariants."""
    data = benchmark.pedantic(compute_fig1, rounds=1, iterations=1)
    emit("fig1_fmm_walkthrough", format_fig1(data))
    # Per-set distributions have at most W+1 = 3 support points.
    for distribution in data.per_set:
        support = (distribution.pmf > 0).sum()
        assert support <= 3
    # Convolution preserves probability mass (paper Figure 1.b).
    assert abs(data.combined.total_mass - 1.0) < 1e-9
    assert (data.combined.support_max
            == data.fmm.total_worst_misses())
