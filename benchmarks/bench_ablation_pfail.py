"""ABL-PFAIL — pWCET sensitivity to the cell failure probability.

The paper fixes pfail = 1e-4 as "representative of the highest assumed
probability of cell failure in related work".  This ablation sweeps
pfail over four decades on a category-diverse subset and checks the
expected monotone behaviour; at the roadmap's low end the protection
mechanisms stop mattering.
"""

import pytest

from repro.experiments.ablations import format_sweep, pfail_sweep

PFAILS = (1e-3, 1e-4, 1e-5, 1e-6)
SUBSET = ("nsichneu", "fibcall", "ud", "adpcm")


@pytest.fixture(scope="module")
def sweep():
    return pfail_sweep(pfails=PFAILS, benchmarks=SUBSET)


def test_pfail_sweep_compute(benchmark):
    """Time one sweep point (pipeline at non-default pfail)."""
    result = benchmark.pedantic(
        lambda: pfail_sweep(pfails=(3e-5,), benchmarks=("fibcall",)),
        rounds=2, iterations=1)
    assert len(result) == 1


def test_pfail_sweep_table(benchmark, sweep, emit):
    text = benchmark.pedantic(lambda: format_sweep(sweep),
                              rounds=1, iterations=1)
    emit("ablation_pfail_sweep", text)
    by_benchmark: dict = {}
    for point in sweep:
        by_benchmark.setdefault(point.benchmark, []).append(point)
    for benchmark_name, points in by_benchmark.items():
        ordered = sorted(points, key=lambda p: p.value)
        # pWCET grows with pfail; the fault-free WCET does not move.
        pwcets = [p.pwcet_none for p in ordered]
        assert pwcets == sorted(pwcets)
        assert len({p.wcet_fault_free for p in ordered}) == 1
        # At every point the mechanism ordering holds.
        for point in points:
            assert (point.wcet_fault_free <= point.pwcet_rw
                    <= point.pwcet_srb <= point.pwcet_none)
