"""BENCH-DISTRIBUTION — the batched multi-pfail distribution kernel.

Measures the tentpole property of PR 7 on the full 25-benchmark suite:

* *cold cell stage* — empty cache, one pfail: the per-(mechanism,
  pfail) penalty convolutions run through the batched kernel (hybrid
  sparse/dense row-parallel folds, one suffix-sum ccdf per batch)
  instead of the scalar per-cell loop.  Acceptance: the cold suite's
  ``cell`` stage is >= 2x faster than the PR 6 recording
  (``BENCH_incremental.json``).
* *pfail axis* — a 5-column pfail sweep axis of one geometry: PR 6
  recomputed every column's 75 cells against the warm solve store,
  paying the full cell stage per column; the batched kernel computes
  the whole axis inside the first column's cell stages and prefills
  the cell store, so the remaining columns are served whole by the
  plan pass.  Acceptance: the amortised per-column cost drops >= 3x
  versus the PR 6 recording of the per-column cell stage.  The
  scalar-engine unbatched axis is also measured and reported — it is
  context, not the baseline, because the scalar engine shares this
  PR's satellite speedups (sparse packed cell encoding, vectorised
  distribution ops, store self-append offsets).

Exports ``BENCH_distribution.json`` under ``benchmarks/results/``.
The harness owns a private store directory under
``benchmarks/.solvecache/`` (gitignored) and wipes it first.
"""

import json
import os
import pathlib
import shutil
import time
from dataclasses import replace

from repro.experiments.runner import fresh_results, run_suite
from repro.pipeline import PipelineStats
from repro.pipeline.stages import SUITE_MECHANISMS
from repro.pwcet import EstimatorConfig
from repro.pwcet.batch import ENGINE_ENV
from repro.solve.backend import selected_backend_name
from repro.suite import EVALUATED_BENCHMARKS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_ROOT = pathlib.Path(__file__).parent / ".solvecache" / \
    "bench_distribution"

#: The sweep axis of phase B (5 columns, the grid's usual span).
AXIS_PFAILS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
#: 25 benchmarks x 3 mechanisms x 1 pfail.
CELLS_PER_COLUMN = 3 * len(EVALUATED_BENCHMARKS)


def _run_suite(config, *, batch_pfails=None) -> tuple[PipelineStats, float]:
    with fresh_results():
        stats = PipelineStats()
        start = time.perf_counter()
        run_suite(config, pipeline_stats=stats, batch_pfails=batch_pfails)
        return stats, time.perf_counter() - start


def _cold_cell_seconds(cache: pathlib.Path, engine: str | None,
                       benchmark=None) -> tuple[PipelineStats, float]:
    """Cold one-pfail suite under ``engine``; returns (stats, wall).

    Store handles are memoised per resolved root, so every round gets
    its *own* fresh root — wiping a directory would not empty the
    in-memory handle and the rerun would be warm, not cold.
    """
    shutil.rmtree(cache, ignore_errors=True)
    previous = os.environ.get(ENGINE_ENV)
    try:
        if engine is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = engine
        if benchmark is not None:
            roots = iter(range(1000))

            def setup():
                root = cache / f"round-{next(roots)}"
                return (EstimatorConfig(cache=str(root)),), {}

            stats, _ = benchmark.pedantic(_run_suite, setup=setup,
                                          rounds=3, iterations=1)
            return stats, min(benchmark.stats.stats.data)
        return _run_suite(EstimatorConfig(cache=str(cache / "round-0")))
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous


def _axis_seconds(cache: pathlib.Path, *, batched: bool) -> float:
    """Wall-clock of the whole 5-column pfail axis, cold store.

    Unbatched runs the scalar engine with no prefill — each column
    recomputes its 75 cells against the warm solve store, the PR 6
    sweep's work profile.  Batched runs the default engine with the
    axis as its batch: the first column computes and persists every
    row, the rest are answered by the plan pass.
    """
    shutil.rmtree(cache, ignore_errors=True)
    previous = os.environ.get(ENGINE_ENV)
    try:
        if batched:
            os.environ.pop(ENGINE_ENV, None)
            batch = {name: AXIS_PFAILS for name in SUITE_MECHANISMS}
        else:
            os.environ[ENGINE_ENV] = "scalar"
            batch = None
        totals = []
        for round_ in range(2):  # best-of rounds damps machine noise
            total = 0.0
            for pfail in AXIS_PFAILS:
                config = replace(
                    EstimatorConfig(cache=str(cache / f"round-{round_}")),
                    pfail=pfail)
                stats, seconds = _run_suite(config, batch_pfails=batch)
                total += seconds
                if batched and pfail != AXIS_PFAILS[0]:
                    assert stats.cells_from_store == CELLS_PER_COLUMN
            totals.append(total)
        return min(totals)
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous


def _pr6_cell_seconds() -> float | None:
    """The PR 6 recording of the cold suite's cell stage, if present."""
    path = RESULTS_DIR / "BENCH_incremental.json"
    try:
        recorded = json.loads(path.read_text())
        return float(recorded["stage_seconds_cold"]["cell"])
    except (OSError, KeyError, ValueError, TypeError):
        return None


def test_distribution_kernel(benchmark, emit):
    # -- phase A: cold suite cell stage, batched vs scalar ------------
    batched_stats, _ = _cold_cell_seconds(CACHE_ROOT / "batched", None,
                                          benchmark=benchmark)
    scalar_stats, _ = _cold_cell_seconds(CACHE_ROOT / "scalar", "scalar")
    batched_cell = batched_stats.stage_seconds["cell"]
    scalar_cell = scalar_stats.stage_seconds["cell"]
    assert batched_stats.cells_recomputed == CELLS_PER_COLUMN
    assert scalar_stats.cells_recomputed == CELLS_PER_COLUMN

    pr6_cell = _pr6_cell_seconds()
    baseline_cell = pr6_cell if pr6_cell is not None else scalar_cell
    # The acceptance bound: the cold suite cell stage halves (at
    # least) against the PR 6 recording.
    assert batched_cell * 2 <= baseline_cell

    # -- phase B: the 5-column pfail axis -----------------------------
    unbatched_axis = _axis_seconds(CACHE_ROOT / "axis-unbatched",
                                   batched=False)
    batched_axis = _axis_seconds(CACHE_ROOT / "axis-batched",
                                 batched=True)
    columns = len(AXIS_PFAILS)
    # The acceptance bound: amortised per-column cost drops >= 3x
    # against the PR 6 recording, where every column paid the full
    # cell stage (`baseline_cell`) against the warm solve store.
    assert batched_axis * 3 <= baseline_cell * columns

    payload = {
        "benchmarks": len(EVALUATED_BENCHMARKS),
        "cells_per_column": CELLS_PER_COLUMN,
        "backend": selected_backend_name(),
        "cold_cell_seconds_batched": batched_cell,
        "cold_cell_seconds_scalar": scalar_cell,
        "cold_cell_seconds_pr6": pr6_cell,
        "cold_cell_speedup_vs_pr6": (baseline_cell / batched_cell),
        "batched_vs_scalar_cell_speedup": scalar_cell / batched_cell,
        "axis_pfails": list(AXIS_PFAILS),
        "axis_seconds_unbatched": unbatched_axis,
        "axis_seconds_batched": batched_axis,
        "axis_amortised_unbatched_per_column": unbatched_axis / columns,
        "axis_amortised_batched_per_column": batched_axis / columns,
        "axis_amortised_speedup_vs_pr6":
            (baseline_cell * columns) / batched_axis,
        "axis_amortised_speedup_vs_scalar": unbatched_axis / batched_axis,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_distribution.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("distribution_kernel", json.dumps(payload, indent=2))
