"""BENCH-INCREMENTAL — the cell-granular DAG's invalidation payoff.

Measures the tentpole property of PR 6 on the full 25-benchmark suite:

* *cold* — empty cache directory: every (mechanism, pfail) cell is
  computed and persisted to the cell store;
* *warm* — identical rerun: the scheduler's plan pass satisfies all 75
  cells from the store by content address; no solve stage runs at all;
* *one edit* — one suite program's CFG changes (the same semantic edit
  the CI ``incremental`` job applies to ``crc`` with sed): only that
  benchmark's classify/solve/cell stages recompute, the other 24
  benchmarks stay satisfied-from-store — so the rerun costs a small
  fraction of the cold run (acceptance: <= 1/5).

Exports ``BENCH_incremental.json`` (cold/warm/one-edit wall-clock and
the cell counters) under ``benchmarks/results/``.  The harness owns a
private store directory under ``benchmarks/.solvecache/`` (gitignored)
and wipes it before the cold pass.
"""

import json
import pathlib
import shutil
import time

import repro.suite as suite
from repro.experiments.runner import fresh_results, run_suite
from repro.minic import (Call, Compute, Function, If, Loop, Program,
                         compile_program)
from repro.pipeline import PipelineStats
from repro.pwcet import EstimatorConfig
from repro.solve.backend import selected_backend_name
from repro.suite import EVALUATED_BENCHMARKS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_DIR = pathlib.Path(__file__).parent / ".solvecache" / "bench_incremental"

#: 25 benchmarks x 3 mechanisms x 1 pfail.
TOTAL_CELLS = 3 * len(EVALUATED_BENCHMARKS)


def _edited_crc() -> Program:
    """The suite's ``crc`` builder with one instruction added to its
    final block — the in-memory twin of the CI job's sed edit (a
    comment-only edit would not change the CFG digest and must not
    invalidate anything)."""
    icrc1 = Function("icrc1", [
        Loop(8, [
            Compute(4, "shift"),
            If([Compute(22, "xor polynomial")], [Compute(14, "plain shift")]),
        ]),
        Compute(3),
    ])
    main = Function("main", [
        Compute(8, "message setup"),
        Loop(256, [Compute(24, "table entry"), Call("icrc1"), Compute(2)]),
        Loop(40, [
            Compute(6, "fetch byte, index tables"),
            If([Compute(5, "high-bit path")], [Compute(4, "low-bit path")]),
        ]),
        Compute(6, "final xor / swap (edited)"),
    ])
    return Program([main, icrc1], name="crc")


def _run(config) -> tuple[PipelineStats, float]:
    with fresh_results():
        stats = PipelineStats()
        start = time.perf_counter()
        run_suite(config, pipeline_stats=stats)
        return stats, time.perf_counter() - start


def test_incremental_cold_warm_one_edit(benchmark, emit):
    shutil.rmtree(CACHE_DIR, ignore_errors=True)
    config = EstimatorConfig(cache=str(CACHE_DIR))

    cold_stats, cold_seconds = _run(config)
    assert cold_stats.cells_recomputed == TOTAL_CELLS
    assert cold_stats.cells_from_store == 0

    warm_stats, _ = benchmark.pedantic(_run, args=(config,),
                                       rounds=3, iterations=1)
    warm_seconds = min(benchmark.stats.stats.data)
    assert warm_stats.cells_from_store == TOTAL_CELLS
    assert warm_stats.cells_recomputed == 0
    assert warm_stats.counters.get("ilp_solved", 0) == 0

    # One program edited: swap crc's compiled form for the +1-
    # instruction variant (new CFG digest, everything else untouched).
    original = suite.load("crc")
    edited = compile_program(_edited_crc())
    assert edited.cfg.digest() != original.cfg.digest()
    suite._COMPILED_CACHE["crc"] = edited
    try:
        edit_stats, edit_seconds = _run(config)
    finally:
        suite._COMPILED_CACHE["crc"] = original
    assert edit_stats.cells_recomputed == 3
    assert edit_stats.cells_from_store == TOTAL_CELLS - 3
    assert edit_stats.tasks.get("classify") == 1
    assert edit_stats.tasks.get("solve") == 1
    # The acceptance bound: recomputing one edited benchmark costs at
    # most a fifth of the cold 25-benchmark suite.
    assert edit_seconds <= cold_seconds / 5

    payload = {
        "benchmarks": len(EVALUATED_BENCHMARKS),
        "cells_total": TOTAL_CELLS,
        "backend": selected_backend_name(),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "one_edit_seconds": edit_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "one_edit_speedup": cold_seconds / edit_seconds,
        "warm_cells_from_store": warm_stats.cells_from_store,
        "one_edit_cells_recomputed": edit_stats.cells_recomputed,
        "one_edit_cells_from_store": edit_stats.cells_from_store,
        "stage_seconds_cold": {stage: round(seconds, 6)
                               for stage, seconds in
                               sorted(cold_stats.stage_seconds.items())},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("incremental_cold_warm_one_edit", json.dumps(payload, indent=2))
