"""FIG4 — the 25-benchmark pWCET survey (the paper's headline result).

Regenerates Figure 4: pWCET at exceedance 1e-15 for fault-free / SRB /
RW, normalised to no protection, the four behaviour categories, and
the in-text gain statistics (paper: SRB avg 40% min 25%, RW avg 48%
min 26%).  The benchmarked unit is the full pipeline of one mid-size
benchmark (crc: 3 mechanisms, ~50 ILPs).
"""

import pytest

from repro.experiments import format_fig4, gain_summary
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.suite import load


def full_pipeline(name: str = "crc") -> int:
    estimator = PWCETEstimator(load(name), EstimatorConfig(), name=name)
    return sum(estimator.estimate(mechanism).pwcet()
               for mechanism in ("none", "srb", "rw"))


def test_fig4_single_benchmark_pipeline(benchmark):
    """Time one benchmark's complete three-mechanism estimation."""
    result = benchmark.pedantic(full_pipeline, rounds=3, iterations=1)
    assert result > 0


def test_fig4_table(benchmark, suite_rows, emit):
    """Regenerate and check the Figure 4 table for all 25 benchmarks."""
    text = benchmark.pedantic(lambda: format_fig4(suite_rows),
                              rounds=1, iterations=1)
    emit("fig4_pwcet_survey", text)
    assert len(suite_rows) == 25
    # The paper's qualitative claims must hold.
    for row in suite_rows:
        assert row.wcet_fault_free <= row.pwcet_rw
        assert row.pwcet_rw <= row.pwcet_srb <= row.pwcet_none
    summary = gain_summary(suite_rows)
    # Both mechanisms help substantially on average (paper: 40%/48%),
    # and the RW dominates the SRB.
    assert summary.average_gain_srb >= 0.25
    assert summary.average_gain_rw >= summary.average_gain_srb
    # All four behaviour categories are populated, as in Figure 4.
    assert {row.category.value for row in suite_rows} == {1, 2, 3, 4}
