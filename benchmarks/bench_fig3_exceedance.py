"""FIG3 — exceedance curves for adpcm (no protection vs SRB vs RW).

Regenerates the series behind the paper's Figure 3 and checks its
shape: the three curves are ordered (RW <= SRB <= none) at every
probability level and all start at the fault-free WCET.  The
benchmarked unit is the exceedance-curve construction (penalty
convolution across the 16 sets plus CCDF extraction).
"""

from repro.experiments.fig3 import (FIG3_MECHANISMS, exceedance_curves,
                                    format_fig3)
from repro.experiments.runner import run_benchmark


def test_fig3_curve_construction(benchmark):
    """Time the penalty-distribution + curve computation for adpcm."""
    result = run_benchmark("adpcm")  # cached across the session

    def build_curves():
        return {name: result.estimates[name].exceedance_curve()
                for name in FIG3_MECHANISMS}

    curves = benchmark(build_curves)
    assert set(curves) == set(FIG3_MECHANISMS)


def test_fig3_series(benchmark, emit):
    """Regenerate the Figure 3 series and verify the curve shapes."""
    text = benchmark.pedantic(format_fig3, rounds=1, iterations=1)
    emit("fig3_adpcm_exceedance", text)
    curves = exceedance_curves()
    result = run_benchmark("adpcm")
    for name in FIG3_MECHANISMS:
        assert curves[name].values[0] == result.wcet_fault_free
    for probability in (1e-2, 1e-5, 1e-8, 1e-11, 1e-15):
        rw = curves["rw"].pwcet(probability)
        srb = curves["srb"].pwcet(probability)
        none = curves["none"].pwcet(probability)
        assert rw <= srb <= none
    # At the paper's target the separation is strict for adpcm.
    assert curves["rw"].pwcet(1e-15) < curves["none"].pwcet(1e-15)
