"""BENCH-ANALYSIS — the vectorised ACS engine and the classification store.

Measures the two tentpole properties of the cache-analysis rework:

* **vectorisation** — classifying the full 25-benchmark suite at every
  associativity (``W .. 0``, plus the SRB pre-analysis) with the numpy
  age-vector engine must be at least 2x faster than the dict-based
  reference oracle, because it runs one Must/May fixpoint pair per
  benchmark instead of one pair per associativity;
* **persistence** — a *warm* rerun against the classification store
  runs **zero** abstract-interpretation fixpoints and reproduces every
  table bit for bit.

Exports the machine-readable ``BENCH_analysis.json`` (cold dict/vector
wall time and fixpoint counts, warm fixpoint count, speedups) under
``benchmarks/results/``.
"""

import json
import pathlib
import shutil
import time

from repro.analysis import CacheAnalysis
from repro.cache import CacheGeometry
from repro.suite import EVALUATED_BENCHMARKS, load

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_DIR = pathlib.Path(__file__).parent / ".solvecache" / "bench_analysis"

#: The paper's geometry: 1 KB, 4-way, 16 B lines.
GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


def _classify_suite(cfgs, *, engine, cache):
    """Full classification workload; returns (seconds, fixpoints, tables)."""
    start = time.perf_counter()
    fixpoints = 0
    tables = {}
    for name, cfg in cfgs.items():
        analysis = CacheAnalysis(cfg, GEOMETRY, cache=cache, engine=engine)
        histograms = {}
        for assoc in range(GEOMETRY.ways, -1, -1):
            histograms[assoc] = \
                analysis.classification(assoc).count_by_chmc()
        srb = analysis.srb_always_hits()
        fixpoints += analysis.stats.fixpoints_run
        tables[name] = (histograms, sorted(srb))
    return time.perf_counter() - start, fixpoints, tables


def test_analysis_cold_vs_warm(benchmark, emit):
    shutil.rmtree(CACHE_DIR, ignore_errors=True)
    cfgs = {name: load(name).cfg for name in EVALUATED_BENCHMARKS}

    # -- cold: reference oracle vs vectorised engine, no store --------
    dict_seconds, dict_fixpoints, dict_tables = _classify_suite(
        cfgs, engine="dict", cache="off")
    vector_seconds, vector_fixpoints, vector_tables = _classify_suite(
        cfgs, engine="vector", cache="off")
    assert vector_tables == dict_tables  # engines agree exactly
    assert vector_fixpoints < dict_fixpoints

    # -- cold + store, then the benchmarked warm rerun ----------------
    cache = str(CACHE_DIR)
    cold_seconds, cold_fixpoints, cold_tables = _classify_suite(
        cfgs, engine="vector", cache=cache)
    assert cold_fixpoints == vector_fixpoints

    def warm():
        return _classify_suite(cfgs, engine="vector", cache=cache)

    warm_seconds_run, warm_fixpoints, warm_tables = \
        benchmark.pedantic(warm, rounds=3, iterations=1)
    warm_seconds = min(benchmark.stats.stats.data)

    # The acceptance property: zero fixpoints, bit-identical output.
    assert warm_fixpoints == 0
    assert warm_tables == cold_tables

    payload = {
        "benchmarks": len(cfgs),
        "associativities": GEOMETRY.ways + 1,
        "dict_seconds": dict_seconds,
        "dict_fixpoints": dict_fixpoints,
        "vector_seconds": vector_seconds,
        "vector_fixpoints": vector_fixpoints,
        "vector_speedup": dict_seconds / vector_seconds,
        "cold_store_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_fixpoints": warm_fixpoints,
        "warm_speedup_vs_dict": dict_seconds / warm_seconds,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_analysis.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("analysis_cold_vs_warm", json.dumps(payload, indent=2))
    # The ISSUE's acceptance floor: >= 2x on the cold full-suite
    # classification (measured ~3.5x; the warm path is far beyond).
    assert payload["vector_speedup"] >= 2.0
