"""EXT-COST — the pWCET/cost trade-off (paper §I, conclusion §VI).

The paper motivates RW and SRB as two points on a cost/benefit curve
and defers the area/power analysis to future work; this harness
produces that analysis with the analytical SRAM model of
:mod:`repro.hwcost` — pWCET gain against hardened-cell area and
leakage overheads, plus the designer's figure of merit (gain per area
point), where the SRB's economy shows.
"""

import pytest

from repro.hwcost import MechanismCostModel, tradeoff_points
from repro.hwcost.tradeoff import format_tradeoff
from repro.pwcet import EstimatorConfig
from repro.reliability import MECHANISMS

SUBSET = ("fibcall", "bsort100", "ud", "adpcm", "nsichneu")


@pytest.fixture(scope="module")
def points():
    return tradeoff_points(SUBSET)


def test_cost_model_compute(benchmark):
    model = MechanismCostModel(EstimatorConfig().geometry)
    costs = benchmark(lambda: [model.cost_of(m) for m in MECHANISMS])
    assert len(costs) == 3


def test_tradeoff_table(benchmark, points, emit):
    text = benchmark.pedantic(lambda: format_tradeoff(points),
                              rounds=1, iterations=1)
    emit("extension_cost_tradeoff", text)
    by_key = {(p.benchmark, p.mechanism): p for p in points}
    for name in SUBSET:
        srb = by_key[(name, "srb")]
        rw = by_key[(name, "rw")]
        # Hardware costs are program independent...
        assert srb.area_overhead < rw.area_overhead
        # ...while the RW's gain dominates per benchmark (paper §IV-B).
        assert rw.gain >= srb.gain - 1e-12
        # The SRB extracts more gain per unit of silicon.
        assert srb.gain_per_area_point >= rw.gain_per_area_point
