"""BENCH-PIPELINE — the unified DAG scheduler vs the phase barrier.

The unified pipeline (:mod:`repro.pipeline`) runs the 25-benchmark
suite as one dependency DAG on a shared worker pool: an estimation
stage starts the moment *its own* benchmark's classification artifact
exists, so ILP solve workers overlap other benchmarks' fixpoints.
The historical orchestration was phase-barriered — every solve waited
for the whole classification phase.

This bench runs both modes through the *same* scheduler (the barrier
is expressed as extra DAG edges: every estimate depends on every
classification), cold (persistent stores off), multi-worker, and
checks:

* both modes produce bit-identical suite results (the DAG changes
  where work runs, never what is computed);
* the pipelined DAG is at least 15 % faster wall-clock than the
  phase-barriered baseline (the ISSUE's acceptance floor).

Exports ``BENCH_pipeline.json`` under ``benchmarks/results/``.
"""

import json
import pathlib
import time

from repro.pipeline.scheduler import PipelineStats
from repro.pipeline.stages import suite_pipeline
from repro.pwcet import EstimatorConfig
from repro.suite import EVALUATED_BENCHMARKS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKERS = 4
ROUNDS = 3
TARGET_PROBABILITY = 1e-15


def _run_suite_dag(*, workers: int, phase_barrier: bool):
    """One cold suite DAG run; returns (seconds, results, stats)."""
    config = EstimatorConfig(cache="off")
    stats = PipelineStats()
    start = time.perf_counter()
    results = suite_pipeline(EVALUATED_BENCHMARKS, config,
                             TARGET_PROBABILITY, workers=workers,
                             stats=stats, phase_barrier=phase_barrier)
    return time.perf_counter() - start, results, stats


def _comparable(results):
    """The paper-facing numbers (what bit-identity is judged on)."""
    return {
        name: (result.wcet_fault_free,
               tuple(result.pwcet(mechanism)
                     for mechanism in ("none", "srb", "rw")))
        for name, result in results.items()
    }


def test_pipeline_overlap_vs_phase_barrier(benchmark, emit):
    sequential_seconds, sequential_results, _ = _run_suite_dag(
        workers=1, phase_barrier=False)

    barrier_seconds = None
    for _ in range(ROUNDS):
        seconds, barrier_results, barrier_stats = _run_suite_dag(
            workers=WORKERS, phase_barrier=True)
        barrier_seconds = (seconds if barrier_seconds is None
                           else min(barrier_seconds, seconds))

    def pipelined():
        return _run_suite_dag(workers=WORKERS, phase_barrier=False)

    _seconds, pipelined_results, pipelined_stats = \
        benchmark.pedantic(pipelined, rounds=ROUNDS, iterations=1)
    pipelined_seconds = min(benchmark.stats.stats.data)

    # Bit-identity across scheduling modes and worker counts.
    assert _comparable(pipelined_results) == _comparable(barrier_results)
    assert _comparable(pipelined_results) == _comparable(sequential_results)

    speedup = barrier_seconds / pipelined_seconds
    payload = {
        "benchmarks": len(EVALUATED_BENCHMARKS),
        "workers": WORKERS,
        "sequential_seconds": sequential_seconds,
        "barrier_seconds": barrier_seconds,
        "pipelined_seconds": pipelined_seconds,
        "speedup_vs_barrier": speedup,
        "pipelined_tasks": pipelined_stats.tasks,
        "ilp_solved": pipelined_stats.counters.get("ilp_solved", 0),
        "fixpoints_run": pipelined_stats.counters.get("fixpoints_run", 0),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("pipeline_overlap", json.dumps(payload, indent=2))
    # The acceptance floor: pipelined >= 15 % faster than the
    # phase-barriered baseline, cold, multi-worker (measured ~1.5x).
    assert speedup >= 1.15
