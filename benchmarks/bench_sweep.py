"""BENCH-SWEEP — the persistent solve cache and the geometry sweep.

Measures the tentpole property of the cross-run solve store: a *cold*
sweep (empty cache directory) pays for every unique ILP once, a *warm*
rerun of the identical grid performs **zero** backend ILP solves and
reproduces every number bit for bit.  Exports the machine-readable
``BENCH_sweep.json`` (cold/warm wall time, cell-store reuse, grid size)
under ``benchmarks/results/`` and regenerates the Pareto-front
artefact of the design-space sweep.

The harness owns a private store directory under
``benchmarks/.solvecache/`` (gitignored) and wipes it before the cold
pass — a controlled cold start is the point of the measurement, so
invocations are deliberately *not* warm across harness runs.  The
cross-process warm workload itself is exercised by the CLI and by the
``warm-solve-cache`` CI job.
"""

import json
import pathlib
import shutil
import time

from repro.pwcet import EstimatorConfig
from repro.solve.backend import selected_backend_name
from repro.sweep import format_sweep_report, geometry_grid, run_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_DIR = pathlib.Path(__file__).parent / ".solvecache" / "bench_sweep"

#: One benchmark per Figure-4 behaviour category keeps the grid honest
#: while the full 25-benchmark sweep stays the CLI's job.
SUBSET = ("nsichneu", "fibcall", "ud", "adpcm")
#: 12-geometry grid (>= the acceptance floor) around the paper's point.
SIZES = (512, 1024, 2048)
WAYS = (2, 4)
LINES = (16, 32)
PFAILS = (1e-4,)


def _run_grid():
    # run_sweep scopes the in-process result memo itself, so every
    # call has fresh-invocation semantics and only the persistent
    # store carries state between the cold and warm passes.
    geometries = geometry_grid(sizes=SIZES, ways=WAYS, lines=LINES)
    return run_sweep(geometries, pfails=PFAILS, benchmarks=SUBSET,
                     config=EstimatorConfig(cache=str(CACHE_DIR)))


def test_sweep_cold_vs_warm(benchmark, emit):
    shutil.rmtree(CACHE_DIR, ignore_errors=True)

    start = time.perf_counter()
    cold = _run_grid()
    cold_seconds = time.perf_counter() - start
    cold_totals = cold.solver_totals
    assert cold_totals["ilp_solved"] > 0
    assert cold_totals["store_hits"] == 0

    warm = benchmark.pedantic(_run_grid, rounds=3, iterations=1)
    warm_seconds = min(benchmark.stats.stats.data)
    warm_totals = warm.solver_totals

    # The acceptance property: a warm rerun never touches the backend
    # — every (mechanism, pfail) cell is satisfied straight from the
    # persistent cell store (so no solve stage runs at all) — and
    # every reported number matches the cold run exactly.
    assert warm_totals["ilp_solved"] == 0
    assert warm_totals["lp_solved"] == 0
    assert warm_totals["fixpoints_run"] == 0
    assert warm_totals["cells_from_store"] == \
        len(cold.cells()) * len(SUBSET) * 3
    assert len(warm.points) == len(cold.points)
    for before, after in zip(cold.points, warm.points):
        assert before == after

    payload = {
        "benchmarks": list(SUBSET),
        "grid_geometries": len(geometry_grid(sizes=SIZES, ways=WAYS,
                                             lines=LINES)),
        "grid_cells": len(cold.cells()),
        "design_points": len(cold.points),
        "backend": selected_backend_name(),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "cold_ilp_solved": int(cold_totals["ilp_solved"]),
        "warm_ilp_solved": int(warm_totals["ilp_solved"]),
        "warm_cells_from_store": int(warm_totals["cells_from_store"]),
        "dedup_hits": int(cold_totals["dedup_hits"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("sweep_cold_vs_warm", json.dumps(payload, indent=2))
    emit("sweep_pareto_report", format_sweep_report(cold))
    assert payload["grid_geometries"] >= 12
