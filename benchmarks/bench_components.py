"""Micro-benchmarks of the pipeline's computational kernels.

Not a paper artefact — engineering numbers for the substrate: cache
analysis fixpoints, the concrete simulator, the MILP solver and the
penalty convolution, measured on representative inputs.
"""

import random

import numpy as np

from repro.analysis import CacheAnalysis, MustAnalysis
from repro.cache import CacheGeometry, LRUCache
from repro.cfg import PathWalker
from repro.ipet import TimingModel, compute_wcet
from repro.pwcet import DiscreteDistribution
from repro.suite import load

GEOMETRY = CacheGeometry.from_size(1024, 4, 16)


def test_must_analysis_fixpoint(benchmark):
    """Must analysis over the biggest benchmark (nsichneu)."""
    compiled = load("nsichneu")
    result = benchmark(lambda: MustAnalysis(compiled.cfg, GEOMETRY))
    assert result.assoc == 4


def test_full_classification(benchmark):
    """All CHMC tables (assoc 4..0) for a mid-size benchmark."""
    compiled = load("crc")

    def classify():
        analysis = CacheAnalysis(compiled.cfg, GEOMETRY, cache="off")
        return [analysis.classification(assoc) for assoc in range(5)]

    tables = benchmark(classify)
    assert len(tables) == 5


def test_ipet_wcet_solve(benchmark):
    """The fault-free IPET MILP for adpcm."""
    compiled = load("adpcm")
    analysis = CacheAnalysis(compiled.cfg, GEOMETRY, cache="off")
    table = analysis.classification()
    timing = TimingModel()
    result = benchmark(
        lambda: compute_wcet(compiled.cfg, table, timing).cycles)
    assert result > 0


def test_concrete_simulation(benchmark):
    """Replay a maximised path of matmult on the LRU simulator."""
    compiled = load("matmult")
    walker = PathWalker(compiled.cfg)
    walk = walker.walk(random.Random(3), maximize_iterations=True)

    def simulate():
        cache = LRUCache(GEOMETRY)
        return cache.run_trace(
            GEOMETRY.block_of(address) for address in walk.addresses)

    hits, misses = benchmark(simulate)
    assert hits + misses == len(walk.addresses)


def test_penalty_convolution(benchmark):
    """Convolving 16 per-set penalty distributions (paper Fig 1.b)."""
    rng = np.random.default_rng(1)
    per_set = []
    for _ in range(16):
        penalties = sorted(rng.integers(0, 2000, size=4))
        points = {0: 0.95, int(penalties[1]): 0.049,
                  int(penalties[2]): 0.00099,
                  int(penalties[3]): 1e-5}
        total = sum(points.values())
        per_set.append(DiscreteDistribution.from_points(
            {value: probability / total
             for value, probability in points.items()}))
    combined = benchmark(
        lambda: DiscreteDistribution.convolve_all(per_set))
    assert abs(combined.total_mass - 1.0) < 1e-9


def test_deep_tail_quantile(benchmark):
    """CCDF + quantile extraction on a large penalty grid."""
    rng = np.random.default_rng(2)
    pmf = rng.random(200_000)
    pmf /= pmf.sum()
    distribution = DiscreteDistribution(pmf)
    value = benchmark(lambda: distribution.quantile_exceedance(1e-15))
    assert 0 <= value <= distribution.support_max
