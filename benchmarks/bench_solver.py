"""ABL-SOLVER — exact ILP vs LP relaxation for the IPET/FMM programs.

The paper solves its ILPs with CPLEX; we use HiGHS through scipy.  For
a *maximisation*, the LP relaxation is a sound (>=) but possibly looser
bound, and solves faster — a practical trade-off for design-space
exploration.  This harness times both modes and quantifies the bound
gap over a benchmark subset.
"""

import pytest

from repro.experiments.ablations import solver_comparison
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.suite import load

SUBSET = ("fibcall", "ud", "adpcm")


def _pipeline(relaxed: bool, name: str = "ud") -> int:
    config = EstimatorConfig(relaxed=relaxed)
    estimator = PWCETEstimator(load(name), config, name=name)
    return estimator.estimate("none").pwcet()


def test_exact_ilp_pipeline(benchmark):
    value = benchmark.pedantic(lambda: _pipeline(False), rounds=3,
                               iterations=1)
    assert value > 0


def test_relaxed_lp_pipeline(benchmark):
    value = benchmark.pedantic(lambda: _pipeline(True), rounds=3,
                               iterations=1)
    assert value > 0


def test_relaxation_gap_table(benchmark, emit):
    pairs = benchmark.pedantic(
        lambda: solver_comparison(benchmarks=SUBSET),
        rounds=1, iterations=1)
    lines = [f"{'benchmark':>10s} {'ILP none':>12s} {'LP none':>12s} "
             f"{'gap':>7s}"]
    for exact, relaxed in pairs:
        gap = (relaxed.pwcet_none - exact.pwcet_none) / exact.pwcet_none
        lines.append(f"{exact.benchmark:>10s} {exact.pwcet_none:12d} "
                     f"{relaxed.pwcet_none:12d} {gap:7.2%}")
        # Soundness: the relaxation never under-estimates.
        assert relaxed.pwcet_none >= exact.pwcet_none
        assert relaxed.pwcet_srb >= exact.pwcet_srb
        assert relaxed.pwcet_rw >= exact.pwcet_rw
    emit("ablation_solver_relaxation", "\n".join(lines))
