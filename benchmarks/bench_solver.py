"""ABL-SOLVER — exact ILP vs LP relaxation for the IPET/FMM programs.

The paper solves its ILPs with CPLEX; we use HiGHS through scipy.  For
a *maximisation*, the LP relaxation is a sound (>=) but possibly looser
bound, and solves faster — a practical trade-off for design-space
exploration.  This harness times both modes and quantifies the bound
gap over a benchmark subset.

It also tracks the solve planner's perf trajectory:
``test_planner_end_to_end_stats`` times the planned pipeline against
the direct (dedup/prune disabled, scipy backend) path and writes the
machine-readable ``BENCH_solver.json`` (wall time, ILPs solved, ILPs
pruned, dedup hit-rate) under ``benchmarks/results/``.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments.ablations import solver_comparison
from repro.pwcet import EstimatorConfig, PWCETEstimator
from repro.solve.backend import selected_backend_name
from repro.suite import load

SUBSET = ("fibcall", "ud", "adpcm")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
MECHANISMS = ("none", "srb", "rw")


def _pipeline(relaxed: bool, name: str = "ud") -> int:
    # cache="off": this harness times the *planner*, so the persistent
    # cross-run store must not answer for it (bench_sweep.py is the
    # harness that measures the store).
    config = EstimatorConfig(relaxed=relaxed, cache="off")
    estimator = PWCETEstimator(load(name), config, name=name)
    return estimator.estimate("none").pwcet()


def test_exact_ilp_pipeline(benchmark):
    value = benchmark.pedantic(lambda: _pipeline(False), rounds=3,
                               iterations=1)
    assert value > 0


def test_relaxed_lp_pipeline(benchmark):
    value = benchmark.pedantic(lambda: _pipeline(True), rounds=3,
                               iterations=1)
    assert value > 0


def test_relaxation_gap_table(benchmark, emit):
    pairs = benchmark.pedantic(
        lambda: solver_comparison(benchmarks=SUBSET),
        rounds=1, iterations=1)
    lines = [f"{'benchmark':>10s} {'ILP none':>12s} {'LP none':>12s} "
             f"{'gap':>7s}"]
    for exact, relaxed in pairs:
        gap = (relaxed.pwcet_none - exact.pwcet_none) / exact.pwcet_none
        lines.append(f"{exact.benchmark:>10s} {exact.pwcet_none:12d} "
                     f"{relaxed.pwcet_none:12d} {gap:7.2%}")
        # Soundness: the relaxation never under-estimates.
        assert relaxed.pwcet_none >= exact.pwcet_none
        assert relaxed.pwcet_srb >= exact.pwcet_srb
        assert relaxed.pwcet_rw >= exact.pwcet_rw
    emit("ablation_solver_relaxation", "\n".join(lines))


_COUNTER_KEYS = ("requests", "ilp_solved", "lp_solved", "dedup_hits",
                 "store_hits", "pruned_empty", "pruned_structural",
                 "pruned_relaxation")


def _run_pipeline(names, *, planned: bool):
    """Estimate all mechanisms for every benchmark; returns counters."""
    totals = dict.fromkeys(_COUNTER_KEYS, 0)
    for name in names:
        estimator = PWCETEstimator(load(name), EstimatorConfig(cache="off"),
                                   name=name)
        if not planned:
            estimator._planner.dedup = False
            estimator._planner.prescreen = False
        for mechanism in MECHANISMS:
            estimator.estimate(mechanism)
        stats = estimator.solver_stats.as_dict()
        for key in _COUNTER_KEYS:  # the hit-rate ratio does not sum
            totals[key] += int(stats[key])
    return totals


def test_planner_end_to_end_stats(benchmark, emit):
    """Planned vs direct sweep timing, exported as BENCH_solver.json."""
    names = ("crc", "ud", "adpcm")
    stats = benchmark.pedantic(
        lambda: _run_pipeline(names, planned=True), rounds=3, iterations=1)
    planned_seconds = min(benchmark.stats.stats.data)

    # Direct reference: no dedup, no pruning, per-call scipy.milp —
    # the shape of the pre-planner pipeline.
    saved = os.environ.get("REPRO_SOLVE_BACKEND")
    os.environ["REPRO_SOLVE_BACKEND"] = "scipy"
    try:
        direct_seconds = min(
            _timed(lambda: _run_pipeline(names, planned=False))
            for _ in range(3))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SOLVE_BACKEND", None)
        else:
            os.environ["REPRO_SOLVE_BACKEND"] = saved

    speedup = direct_seconds / planned_seconds
    payload = {
        "benchmarks": list(names),
        "mechanisms": list(MECHANISMS),
        "backend": selected_backend_name(),
        "workers": 1,
        "planned_seconds": planned_seconds,
        "direct_seconds": direct_seconds,
        "speedup": speedup,
        "requests": int(stats["requests"]),
        "ilp_solved": int(stats["ilp_solved"]),
        "lp_solved": int(stats["lp_solved"]),
        "ilp_pruned": int(stats["pruned_empty"]
                          + stats["pruned_structural"]
                          + stats["pruned_relaxation"]
                          + stats["dedup_hits"]),
        "pruned_empty": int(stats["pruned_empty"]),
        "pruned_structural": int(stats["pruned_structural"]),
        "pruned_relaxation": int(stats["pruned_relaxation"]),
        "dedup_hits": int(stats["dedup_hits"]),
        "dedup_hit_rate": stats["dedup_hits"] / max(
            1, stats["requests"] - stats["pruned_empty"]),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_solver.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    emit("solver_planner_stats", json.dumps(payload, indent=2))
    # The planner must dodge most of the sweep and beat the direct
    # path clearly (target: >= 3x single-worker over the seed shape).
    assert payload["ilp_solved"] < payload["requests"] / 2
    assert speedup >= 2.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
